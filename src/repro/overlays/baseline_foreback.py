"""The order-based sorted-list departure baseline (after Foreback et al. [15]).

The prior work the paper positions itself against: a self-stabilizing
departure protocol that (a) requires a **fixed total order** on the
processes and (b) is designed for one **specific topology**, the sorted
list. [15]'s full pseudocode is not reproduced in the paper, so this is a
faithful-in-spirit reconstruction that keeps exactly the two properties
the comparison (experiment E10) is about. Rules:

* Every process — staying *and* leaving — participates in linearization
  over the full population: keep the closest candidate per side, delegate
  the rest toward its side (♥), and (if staying) self-introduce to the
  closest neighbours (♦).
* A staying process immediately sheds references to leaving processes,
  reversing the edge back to them (♣) so the leaving process can bridge
  around itself.
* A **leaving** process, once locally linearized (which delegation makes
  true after every timeout), *bridges*: it introduces its closest left
  and right candidates to each other (♦ — its own references are kept, so
  no connectivity risk), announces its true mode to them, and exits when
  the NIDEC-style :class:`~repro.core.oracles.NoIncomingOracle` confirms
  that no relevant process still holds or carries its reference. The
  bridge is (re-)sent in the same atomic timeout as the exit, so at the
  moment of departure the endpoints are already connected by the
  in-flight bridge references.
* **Order-based tie-breaking** (the step that makes the baseline
  *require* the total order): two adjacent leaving processes would
  otherwise reference each other forever, blocking both exits. A leaving
  process therefore sheds leaving-believed candidates with *smaller*
  keys (reversing the edge), while keeping larger-keyed ones; leaving
  chains then resolve deterministically from the largest key down.

The contrast measured by E10: the baseline must linearize the whole
population (leaving nodes included) before departures complete, reshapes
any input topology into the sorted list, and needs both the order and a
different oracle — whereas the paper's protocol is order-free and
topology-agnostic and composes with arbitrary P ∈ 𝒫 via Section 4.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.sim.messages import RefInfo
from repro.sim.process import ActionContext, Process
from repro.sim.refs import Ref
from repro.sim.states import Mode

__all__ = ["BaselineListProcess"]


class BaselineListProcess(Process):
    """One process of the reconstructed [15]-style list departure protocol."""

    requires_order = True

    def __init__(
        self,
        pid: int,
        mode: Mode,
        *,
        neighbors: dict[Ref, Mode] | None = None,
    ) -> None:
        super().__init__(pid, mode)
        #: candidate references with mode beliefs (sides derived by key).
        self.candidates: dict[Ref, Mode] = {}
        if neighbors:
            for ref, belief in neighbors.items():
                if ref != self.self_ref:
                    self.candidates[ref] = belief

    # ------------------------------------------------------------------ state

    def stored_refs(self) -> Iterator[RefInfo]:
        for ref, belief in self.candidates.items():
            yield RefInfo(ref, belief)

    def describe_vars(self) -> dict:
        return {
            "candidates": {repr(r): b.value for r, b in self.candidates.items()}
        }

    def _shed(self, ctx: ActionContext, ref: Ref) -> None:
        """Drop *ref* and hand it our reference instead (reversal ♣)."""
        self.candidates.pop(ref, None)
        ctx.send(ref, "b_insert", RefInfo(self.self_ref, self.mode))

    def _must_shed(self, keys, ref: Ref, belief: Mode) -> bool:
        """Shedding rule: staying sheds every leaving candidate; leaving
        sheds only smaller-keyed leaving candidates (tie-breaking)."""
        if belief is not Mode.LEAVING:
            return False
        if self.mode is Mode.STAYING:
            return True
        return keys.key(ref) < keys.key(self.self_ref)

    # ------------------------------------------------------------------ actions

    def timeout(self, ctx: ActionContext) -> None:
        keys = ctx.keys
        for ref, belief in list(self.candidates.items()):
            if self._must_shed(keys, ref, belief):
                self._shed(ctx, ref)
        if self.mode is Mode.STAYING:
            mine = keys.key(self.self_ref)
            left = keys.sorted(r for r in self.candidates if keys.key(r) < mine)
            right = keys.sorted(r for r in self.candidates if keys.key(r) > mine)
            # Linearize: delegate non-closest candidates toward their side. ♥
            for nearer, farther in zip(left[1:], left[:-1], strict=True):
                ctx.send(
                    nearer, "b_insert", RefInfo(farther, self.candidates[farther])
                )
                del self.candidates[farther]
            for nearer, farther in zip(right[:-1], right[1:], strict=True):
                ctx.send(
                    nearer, "b_insert", RefInfo(farther, self.candidates[farther])
                )
                del self.candidates[farther]
            closest_left = left[-1] if left else None
            closest_right = right[0] if right else None
            for ref in (closest_left, closest_right):
                if ref is not None:  # self-introduction                  ♦
                    ctx.send(ref, "b_insert", RefInfo(self.self_ref, self.mode))
            return
        # Leaving: stop participating in list maintenance — hold the
        # candidates (they are the connectivity we must hand over). Check
        # the oracle *first*: its verdict refers to the action's start
        # state, before this round's announcements put our reference back
        # in flight.
        safe = ctx.oracle()  # NoIncomingOracle (incl. empty own channel)
        ordered = keys.sorted(self.candidates)
        if safe:
            # Chain-bridge all candidates in key order, both directions
            # (introduction: our own copies are kept until exit), so that
            # removing us and our out-edges cannot disconnect them.      ♦
            for a, b in zip(ordered, ordered[1:], strict=False):
                ctx.send(a, "b_insert", RefInfo(b, self.candidates[b]))
                ctx.send(b, "b_insert", RefInfo(a, self.candidates[a]))
            ctx.exit()
            return
        # Not safe yet: announce our true mode to *every* candidate so
        # each holder of our reference learns to shed it (announcing only
        # to the closest pair can deadlock: a farther staying holder would
        # never learn our mode).                                          ♦
        for ref in ordered:
            ctx.send(ref, "b_insert", RefInfo(self.self_ref, self.mode))

    def on_b_insert(self, ctx: ActionContext, info: RefInfo) -> None:
        """Integrate a delegated/introduced reference (♠ via dict)."""
        v = info.ref
        if v == self.self_ref:
            return
        belief = info.mode if info.mode is not None else Mode.STAYING
        if self._must_shed(ctx.keys, v, belief):
            self.candidates.pop(v, None)
            ctx.send(v, "b_insert", RefInfo(self.self_ref, self.mode))  # ♣
            return
        self.candidates[v] = belief
