"""Self-stabilizing star: everyone attaches to the minimum-key process.

Target topology: the bidirected star centred on the process with the
globally smallest key — the centre stores everyone, everyone else stores
only the centre. A miniature "leader election by topology" overlay.

Rule per timeout: let c be the smallest key among stored candidates and
ourselves. If we are c, keep all candidates and *self-introduce* (♦) to
each (they learn the centre). Otherwise *delegate* (♥) every candidate
except c to c and self-introduce to c (the centre collects the whole
population). Candidates only flow toward smaller keys, so the global
minimum eventually absorbs every reference and broadcasts itself.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.overlays.base import OverlayLogic, SendFn
from repro.sim.refs import KeyProvider, Ref

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = ["StarLogic"]


class StarLogic(OverlayLogic):
    """Pure logic of the min-key star protocol."""

    requires_order = True
    message_labels = ("p_insert",)

    def __init__(self, self_ref: Ref) -> None:
        super().__init__(self_ref)
        self.known: set[Ref] = set()

    # ------------------------------------------------------------------ state

    def neighbor_refs(self) -> Iterator[Ref]:
        yield from self.known

    def integrate(self, send: SendFn, ref: Ref) -> None:
        if ref != self.self_ref:
            self.known.add(ref)  #                                        ♠

    def drop_neighbor(self, ref: Ref) -> bool:
        if ref in self.known:
            self.known.discard(ref)
            return True
        return False

    # ------------------------------------------------------------------ behaviour

    def p_timeout(self, send: SendFn, keys: KeyProvider | None) -> None:
        assert keys is not None, "the star requires ordered keys"
        if not self.known:
            return
        best = keys.min(self.known)
        if keys.key(self.self_ref) < keys.key(best):
            # We are the best centre we know of: keep everyone, let them
            # know us.                                                    ♦
            for v in keys.sorted(self.known):
                send(v, "p_insert", self.self_ref)
        else:
            for v in keys.sorted(self.known):
                if v != best:
                    send(best, "p_insert", v)  # delegate toward centre   ♥
                    self.known.discard(v)
            send(best, "p_insert", self.self_ref)  #                      ♦

    def handle(
        self, send: SendFn, keys: KeyProvider | None, label: str, *args
    ) -> None:
        if label == "p_insert":
            (ref,) = args
            self.integrate(send, ref)

    # ------------------------------------------------------------------ target

    @classmethod
    def target_reached(cls, engine: Engine) -> bool:
        """Explicit staying↔staying edges form exactly the bidirected star
        around the minimum-key staying process."""
        from repro.graphs.metrics import is_star
        from repro.graphs.snapshot import EdgeKind
        from repro.sim.states import Mode, PState

        staying = {
            pid
            for pid, p in engine.processes.items()
            if p.mode is Mode.STAYING and p.state is not PState.GONE
        }
        if not staying:
            return True
        snap = engine.snapshot()
        explicit = set()
        for e in snap.edges:
            if e.kind is EdgeKind.EXPLICIT and e.src in staying and e.dst in staying:
                explicit.add((e.src, e.dst))
        if len(staying) == 1:
            return not explicit
        return is_star(frozenset(explicit), staying, min(staying))
