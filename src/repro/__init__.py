"""repro — self-stabilizing finite departure for overlay networks.

A complete, executable reproduction of *"Towards a Universal Approach for
the Finite Departure Problem in Overlay Networks"* (Koutsopoulos,
Scheideler & Strothmann, SPAA 2015): the asynchronous message-passing
model, the four universal edge primitives, the SINGLE-oracle FDP protocol,
its oracle-free FSP variant, the embedding framework for overlay
maintenance protocols, and the experiment harness validating every
theorem and lemma of the paper.

Quickstart::

    from repro import build_fdp_engine, fdp_legitimate
    from repro.graphs import generators

    n = 32
    edges = generators.random_connected(n, extra_edges=16, seed=1)
    engine = build_fdp_engine(n, edges, leaving={3, 7, 21}, seed=1)
    assert engine.run(200_000, until=fdp_legitimate, check_every=64)
    print(engine.describe())

See ``examples/`` for complete scenarios and ``DESIGN.md`` for the
architecture and experiment index.
"""

from repro.core import (
    CLEAN,
    HEAVY_CORRUPTION,
    LIGHT_CORRUPTION,
    AlwaysOracle,
    Corruption,
    FDPProcess,
    FSPProcess,
    NeverOracle,
    Primitive,
    PrimitiveGraph,
    PrimitiveOp,
    SingleOracle,
    TimeoutSingleOracle,
    build_fdp_engine,
    build_fsp_engine,
    choose_leaving,
    fdp_legitimate,
    fsp_legitimate,
    plan_transformation,
    potential,
    rounds_to_clique,
)
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    CopyStoreSendViolation,
    ModelViolation,
    ReproError,
    SafetyViolation,
)
from repro.sim import (
    AdversarialScheduler,
    Capability,
    Engine,
    Mode,
    OldestFirstScheduler,
    PState,
    Process,
    RandomScheduler,
    Ref,
    RefInfo,
    SynchronousScheduler,
)

__version__ = "1.0.0"

__all__ = [
    "AdversarialScheduler",
    "AlwaysOracle",
    "CLEAN",
    "Capability",
    "ConfigurationError",
    "ConvergenceError",
    "CopyStoreSendViolation",
    "Corruption",
    "Engine",
    "FDPProcess",
    "FSPProcess",
    "HEAVY_CORRUPTION",
    "LIGHT_CORRUPTION",
    "Mode",
    "ModelViolation",
    "NeverOracle",
    "OldestFirstScheduler",
    "PState",
    "Primitive",
    "PrimitiveGraph",
    "PrimitiveOp",
    "Process",
    "RandomScheduler",
    "Ref",
    "RefInfo",
    "ReproError",
    "SafetyViolation",
    "SingleOracle",
    "SynchronousScheduler",
    "TimeoutSingleOracle",
    "build_fdp_engine",
    "build_fsp_engine",
    "choose_leaving",
    "fdp_legitimate",
    "fsp_legitimate",
    "plan_transformation",
    "potential",
    "rounds_to_clique",
    "__version__",
]
