"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
downstream users can catch the whole family with one clause. The split
below mirrors the three ways a simulation can go wrong:

* the *user* misuses the API (:class:`ConfigurationError`),
* *protocol code* violates the paper's computational model
  (:class:`ModelViolation` and its subclasses), or
* the *system under test* breaks one of the paper's theorems
  (:class:`SafetyViolation`, :class:`ConvergenceError`) — these are the
  errors the test-suite and benchmark monitors are designed to surface.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ModelViolation",
    "CopyStoreSendViolation",
    "StateViolation",
    "SafetyViolation",
    "SlotRecycleOverflow",
    "ConvergenceError",
    "TrialTimeout",
    "UnknownActionError",
    "WatchdogTrip",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A simulation, protocol or experiment was configured inconsistently.

    Examples: duplicate process identifiers, a topology referencing
    non-existent processes, an initial state violating the admissibility
    constraints of the paper's Section 1.2 (e.g. a connected component
    without a single staying process).
    """


class ModelViolation(ReproError):
    """Protocol code performed an operation the paper's model forbids."""


class CopyStoreSendViolation(ModelViolation):
    """A protocol manipulated the internals of a process reference.

    The paper restricts attention to *copy-store-send* protocols: the only
    operations allowed on references are copying, storing and sending them
    (plus equality comparison). Ordering, hashing-to-integer or arithmetic
    on references raises this error unless the protocol explicitly declares
    ``requires_order`` (mirroring the paper's remark that the protocols of
    Foreback et al. [15] need a fixed total order while the paper's own
    protocol does not).
    """


class StateViolation(ModelViolation):
    """An action was attempted in a process state that forbids it.

    For instance a *gone* process executing any action, or ``sleep`` being
    invoked in an FDP run (where the sleep command is unavailable by
    problem definition).
    """


class SafetyViolation(ReproError):
    """A monitored safety invariant was broken during a run.

    Raised by invariant monitors, e.g. when the weakly-connected-component
    invariant of Lemma 2 fails: two relevant processes that started in the
    same component became disconnected.
    """


class ConvergenceError(ReproError):
    """A run exhausted its step budget before reaching the target predicate.

    Carries the final engine statistics in :attr:`stats` when available so
    experiment harnesses can report how far the run got, and a
    :attr:`diagnostics` payload (current Φ, pending messages, gone/asleep
    counts, last-progress step) so budget exhaustion is debuggable without
    a rerun.
    """

    def __init__(
        self,
        message: str,
        stats: dict | None = None,
        diagnostics: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.stats = dict(stats) if stats else {}
        self.diagnostics = dict(diagnostics) if diagnostics else {}


class SlotRecycleOverflow(ReproError):
    """Recycling a struct-of-arrays slot would overflow its generation tag.

    Tagged-int references pack ``slot | gen << REF_SLOT_BITS``; the
    generation field is capped at :data:`repro.sim.refs.REF_GEN_BITS`
    bits so a packed tag stays an exact IEEE-754 integer. A slot that
    has been exited and recycled 2^31 times cannot be reused without a
    stale tag becoming able to alias the new occupant, so
    :meth:`repro.sim.soa.EngineCore.admit` raises this instead. Carries
    the offending ``slot`` and its ``gen`` for diagnostics.
    """

    def __init__(self, message: str, slot: int, gen: int) -> None:
        super().__init__(message)
        self.slot = slot
        self.gen = gen


class WatchdogTrip(ReproError):
    """A chaos watchdog detected a stalled or diverging run.

    Raised by the supervisors in :mod:`repro.chaos.watchdogs` (livelock,
    no-progress, backlog). Carries the structured
    :class:`~repro.chaos.watchdogs.StallDiagnosis` in :attr:`diagnosis`
    so failure capsules can persist the trip verbatim.
    """

    def __init__(self, message: str, diagnosis: object | None = None) -> None:
        super().__init__(message)
        self.diagnosis = diagnosis


class TrialTimeout(ReproError):
    """A trial exceeded its per-trial wall-clock budget.

    Raised from inside :func:`repro.analysis.runner.run_trial` when a
    ``timeout=`` was requested; under ``on_error="capture"`` it surfaces
    as a structured :class:`~repro.analysis.runner.TrialResult` failure
    instead of hanging the sweep. Wall-clock dependent by nature, so —
    unlike every other failure in the family — whether it fires is not a
    pure function of the seed.
    """


class UnknownActionError(ModelViolation):
    """A message requested an action label the receiving process lacks.

    The paper specifies that such messages are ignored by processes; the
    engine therefore only raises this in *strict* mode (used by the test
    suite to catch typos) and silently drops the message otherwise.
    """
