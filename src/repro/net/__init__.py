"""Unreliable underlay + reliable-delivery transport (docs/ROBUSTNESS.md).

The paper's model speaks about *channels*: a message handed to a channel
stays there until the scheduler delivers it, and the reference it
carries keeps its edge in the process graph for exactly that long. A
deployable overlay has no such channels — the underlay drops,
duplicates, delays and transiently partitions packets. This package
closes that gap in two layers:

* :mod:`repro.net.underlay` — a seeded fault interposer. Every
  transmission *attempt* is assigned a fate (lost, duplicated, delayed,
  blocked by a partition) as a pure function of the underlay seed, the
  attempt's identity and the virtual step, so a faulty run is
  bit-identically reproducible from its configuration alone.

* :mod:`repro.net.reliable` — a reliable-delivery transport restoring
  the channel-set semantics end-to-end: per-directed-channel sequence
  numbers, cumulative acks, seeded retransmission with exponential
  backoff + jitter, and receiver-side dedup. The engine keeps the
  paper-level message in the channel for the whole exchange — an
  unacked in-flight message still *is* "in the channel" — so the live
  graph, Φ and Lemma 2 stay exact under arbitrary underlay faults.
"""

from repro.net.reliable import (
    NetStats,
    ReliableTransport,
    default_net_config,
    journal_digest,
)
from repro.net.underlay import Underlay, UnderlayConfig

__all__ = [
    "NetStats",
    "ReliableTransport",
    "Underlay",
    "UnderlayConfig",
    "default_net_config",
    "journal_digest",
]
