"""Seeded unreliable-underlay fault model (docs/ROBUSTNESS.md).

The underlay decides the *fate* of every transmission attempt — lost,
duplicated, delayed, or blocked by a transient partition — without ever
touching engine state. A fate is a pure function of

    (underlay seed, attempt identity, virtual step)

where the attempt identity is the ``(src, dst, key)`` triple the
transport derives from its per-channel sequence numbers. Two runs with
the same underlay configuration therefore assign the same fate to the
same attempt no matter what order the attempts are processed in, which
is what makes faulty runs capsule-capturable and bit-identically
replayable.

Chaos campaigns escalate faults mid-run through *bursts*: bounded step
windows that add loss/dup/delay probability or open an extra partition
cut. Bursts are themselves injected on a seeded schedule (see
``repro.chaos.campaigns``), so the determinism contract survives them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

__all__ = ["Fate", "Underlay", "UnderlayConfig"]

#: burst kinds a campaign may overlay on the base fault rates.
BURST_KINDS = ("loss", "dup", "delay", "partition")


@dataclass(frozen=True)
class UnderlayConfig:
    """Base fault rates and the (optional) scheduled transient partition.

    ``loss``/``dup``/``delay`` are per-*attempt* probabilities; a
    retransmission of the same message is a fresh attempt with an
    independent fate. ``partition_at``/``partition_for`` schedule one
    transient partition: for ``partition_for`` steps starting at step
    ``partition_at``, attempts crossing a seeded bipartition of the pid
    space are blocked (both data and ack frames).
    """

    seed: int = 0
    loss: float = 0.0
    dup: float = 0.0
    delay: float = 0.0
    delay_min: int = 1
    delay_max: int = 32
    partition_at: int | None = None
    partition_for: int = 0

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "loss": self.loss,
            "dup": self.dup,
            "delay": self.delay,
            "delay_min": self.delay_min,
            "delay_max": self.delay_max,
            "partition_at": self.partition_at,
            "partition_for": self.partition_for,
        }

    @classmethod
    def from_dict(cls, data: dict) -> UnderlayConfig:
        return cls(**data)


@dataclass(frozen=True, slots=True)
class Fate:
    """The underlay's verdict on one transmission attempt.

    ``arrivals`` holds the step offsets at which copies of the frame
    reach the destination — empty when the attempt was lost or blocked,
    two entries when the underlay duplicated it. ``delayed`` marks any
    arrival beyond the non-FIFO baseline (offset 0).
    """

    arrivals: tuple[int, ...] = ()
    dropped: bool = False
    blocked: bool = False
    duplicated: bool = False
    delayed: bool = False


@dataclass
class _Burst:
    kind: str
    start: int
    duration: int
    amount: float

    def active(self, step: int) -> bool:
        return self.start <= step < self.start + self.duration

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
            "amount": self.amount,
        }


@dataclass
class Underlay:
    """Assigns seeded fates to transmission attempts; holds burst state."""

    config: UnderlayConfig = field(default_factory=UnderlayConfig)
    bursts: list[_Burst] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._side_cache: dict[int, int] = {}

    # ------------------------------------------------------------- partitions

    def side(self, pid: int) -> int:
        """Seeded bipartition side of ``pid`` (stable for the run)."""
        cached = self._side_cache.get(pid)
        if cached is None:
            cached = Random(f"{self.config.seed}:side:{pid}").randrange(2)
            self._side_cache[pid] = cached
        return cached

    def partition_active(self, step: int) -> bool:
        cfg = self.config
        if cfg.partition_at is not None and (
            cfg.partition_at <= step < cfg.partition_at + cfg.partition_for
        ):
            return True
        return any(b.kind == "partition" and b.active(step) for b in self.bursts)

    def blocks(self, src: int, dst: int, step: int) -> bool:
        """True when a partition currently cuts the ``src -> dst`` path."""
        return self.partition_active(step) and self.side(src) != self.side(dst)

    # ----------------------------------------------------------------- bursts

    def add_burst(self, kind: str, start: int, duration: int, amount: float) -> None:
        if kind not in BURST_KINDS:
            raise ValueError(f"unknown burst kind {kind!r}")
        self.bursts.append(_Burst(kind, start, max(1, duration), amount))

    def _rate(self, kind: str, base: float, step: int) -> float:
        extra = sum(
            b.amount for b in self.bursts if b.kind == kind and b.active(step)
        )
        return min(1.0, base + extra)

    # ------------------------------------------------------------------ fates

    def fate(self, src: int, dst: int, key: str, step: int) -> Fate:
        """Fate of one attempt — pure in (seed, src, dst, key, step).

        ``key`` must be unique per attempt (the transport uses
        ``"d:<tseq>:<attempt>"`` for data frames and ``"a:<ack id>"``
        for acks); the step only enters through the partition window
        and the burst-adjusted rates, so a replayed attempt with the
        same identity at the same step draws the same fate.
        """
        if self.blocks(src, dst, step):
            return Fate(blocked=True)
        cfg = self.config
        rng = Random(f"{cfg.seed}:{src}>{dst}:{key}")
        if rng.random() < self._rate("loss", cfg.loss, step):
            return Fate(dropped=True)
        first, late = self._offset(rng, step)
        arrivals = [first]
        duplicated = rng.random() < self._rate("dup", cfg.dup, step)
        if duplicated:
            extra, extra_late = self._offset(rng, step)
            arrivals.append(extra)
            late = late or extra_late
        return Fate(
            arrivals=tuple(arrivals), duplicated=duplicated, delayed=late
        )

    def _offset(self, rng: Random, step: int) -> tuple[int, bool]:
        """One arrival-offset draw: (offset, was-it-delayed)."""
        cfg = self.config
        if rng.random() < self._rate("delay", cfg.delay, step):
            return rng.randint(cfg.delay_min, cfg.delay_max), True
        return 0, False
