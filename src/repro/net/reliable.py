"""Reliable-delivery transport over the unreliable underlay.

The engine's contract with the paper is that a posted message sits in
the target's channel until delivered, and the reference it carries
counts as an edge of PG for exactly that long. This transport keeps
that contract under loss, duplication, delay and transient partitions
by the classic end-to-end recipe:

* the paper-level :class:`~repro.sim.messages.Message` enters the
  channel at post time and **never leaves it because of a fault** —
  only an actual engine delivery removes it. Faults act on transport
  *frames* (announcements that the message has become deliverable), so
  ref conservation, LiveGraph, Φ and Lemma 2 are exact by construction;
* each directed channel ``src -> dst`` numbers its frames with a
  transport sequence number (``tseq``), the receiver acknowledges with
  a **cumulative floor** plus an above-floor seen-set (dedup), and the
  sender retransmits unacked frames on an exponential-backoff timer
  with seeded jitter;
* what the underlay faults *actually* delay is the moment the
  scheduler learns the message is deliverable (``notify_send``).
  Recorded schedules stay valid verbatim — a ``ReplayScheduler``
  ignores notifications and only checks channel membership — so a v3
  capsule replays bit-identically whether or not the transport is
  re-attached.

All transport state advances on a virtual clock that normally tracks
``engine.step_count``. When every pending frame is in flight and the
scheduler starves (e.g. an FSP population all asleep while the only
wake-up frame is being retransmitted), :meth:`ReliableTransport.run_dry`
fast-forwards the clock to the next due transport event so the run
cannot falsely quiesce.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from collections import deque
from dataclasses import dataclass
from random import Random
from typing import TYPE_CHECKING, Any

from repro.net.underlay import Underlay, UnderlayConfig
from repro.sim.states import PState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine
    from repro.sim.messages import Message

__all__ = [
    "NetStats",
    "ReliableTransport",
    "default_net_config",
    "journal_digest",
]

#: per-call bound on events a starvation fast-forward may process; keeps
#: a 100%-loss configuration from spinning the retransmit timer forever.
_RUN_DRY_LIMIT = 10_000


@dataclass
class NetStats:
    """O(1) transport counters, published as ``engine.net_stats``.

    ``delivered`` counts data frames that reached the destination
    (first attempts and retransmissions alike); ``dropped`` folds loss
    and partition blocks together; ``deduped`` counts received frames
    discarded as duplicates of an already-arrived ``tseq``.
    """

    sends: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    retransmits: int = 0
    acks: int = 0
    deduped: int = 0
    cancelled_gone: int = 0

    def as_dict(self) -> dict:
        return {
            name: getattr(self, name)
            for name in (
                "sends",
                "delivered",
                "dropped",
                "duplicated",
                "delayed",
                "retransmits",
                "acks",
                "deduped",
                "cancelled_gone",
            )
        }


def default_net_config(
    seed: int = 0,
    *,
    loss: float = 0.1,
    dup: float = 0.1,
    delay: float = 0.1,
    partition_at: int | None = 64,
    partition_for: int = 48,
) -> dict:
    """The documented default fault campaign: 10% loss + dup + delay
    plus one transient partition early in the run."""
    return {
        "underlay": {
            "seed": seed,
            "loss": loss,
            "dup": dup,
            "delay": delay,
            "delay_min": 1,
            "delay_max": 32,
            "partition_at": partition_at,
            "partition_for": partition_for,
        },
        "rto": 24,
        "backoff": 2.0,
        "max_rto": 2_048,
        "jitter": 0.25,
        "journal_cap": 4_096,
    }


def journal_digest(journal: list[dict]) -> str:
    """Canonical digest of a retransmit journal (capsule tamper check)."""
    blob = json.dumps(list(journal), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


class _Flight:
    """One unacked data frame: which paper-message, how many attempts."""

    __slots__ = ("announced", "attempts", "mseq")

    def __init__(self, mseq: int) -> None:
        self.mseq = mseq
        self.attempts = 1
        self.announced = False


class _Rx:
    """Receiver-side dedup state for one directed channel."""

    __slots__ = ("floor", "seen")

    def __init__(self) -> None:
        self.floor = -1
        self.seen: set[int] = set()

    def admit(self, tseq: int) -> bool:
        """Record arrival of ``tseq``; False when it is a duplicate."""
        if tseq <= self.floor or tseq in self.seen:
            return False
        self.seen.add(tseq)
        while self.floor + 1 in self.seen:
            self.floor += 1
            self.seen.remove(self.floor)
        return True


class ReliableTransport:
    """Ack/retransmit transport; installed as ``engine.net``.

    The engine calls :meth:`on_post` instead of ``notify_send`` for
    protocol posts, :meth:`flush` at every step boundary,
    :meth:`on_gone` when a process departs, and :meth:`run_dry` when
    the scheduler starves. Everything else is internal.
    """

    def __init__(
        self,
        underlay: Underlay | None = None,
        *,
        rto: int = 24,
        backoff: float = 2.0,
        max_rto: int = 2_048,
        jitter: float = 0.25,
        journal_cap: int = 4_096,
    ) -> None:
        self.underlay = underlay if underlay is not None else Underlay()
        self.rto = rto
        self.backoff = backoff
        self.max_rto = max_rto
        self.jitter = jitter
        self.journal_cap = journal_cap
        self.stats = NetStats()
        self.journal: deque[dict] = deque(maxlen=journal_cap)
        self.engine: Engine | None = None
        self._now = 0
        self._eid = 0
        self._ack_id = 0
        # event heap: (due, eid, kind, src, dst, payload)
        #   kind "d": data-frame arrival, payload = tseq
        #   kind "a": ack arrival at src,  payload = cumulative floor
        #   kind "r": retransmit timer,    payload = tseq
        self._events: list[tuple[int, int, str, int, int, int]] = []
        self._next_tseq: dict[tuple[int, int], int] = {}
        self._flights: dict[tuple[int, int], dict[int, _Flight]] = {}
        self._by_mseq: dict[int, tuple[int, int, int]] = {}
        self._rx: dict[tuple[int, int], _Rx] = {}

    # ------------------------------------------------------------ config i/o

    def config(self) -> dict:
        return {
            "underlay": self.underlay.config.as_dict(),
            "rto": self.rto,
            "backoff": self.backoff,
            "max_rto": self.max_rto,
            "jitter": self.jitter,
            "journal_cap": self.journal_cap,
        }

    @classmethod
    def from_config(cls, config: dict) -> ReliableTransport:
        data = dict(config)
        underlay = Underlay(UnderlayConfig.from_dict(data.pop("underlay")))
        return cls(underlay, **data)

    def install(self, engine: Engine) -> ReliableTransport:
        """Attach to ``engine`` (must happen before the run starts)."""
        engine.net = self
        engine.net_stats = self.stats
        self.engine = engine
        if getattr(engine, "_core", None) is not None:
            # A struct-of-arrays mirror built before the transport was
            # installed would batch-step around the flush hooks; force a
            # rebuild, which now refuses (CoreUnsupported) and drops the
            # run onto the object loop.
            engine._core_stale = True  # noqa: SLF001 - engine collaborator
        return self

    # ------------------------------------------------------------- internals

    def _log(self, ev: str, src: int, dst: int, tseq: int, attempt: int) -> None:
        self.journal.append(
            {"at": self._now, "ev": ev, "src": src, "dst": dst,
             "tseq": tseq, "attempt": attempt}
        )

    def _push(self, due: int, kind: str, src: int, dst: int, payload: int) -> None:
        self._eid += 1
        heapq.heappush(self._events, (due, self._eid, kind, src, dst, payload))

    def _rto_after(self, src: int, dst: int, tseq: int, attempt: int) -> int:
        base = min(self.rto * self.backoff ** (attempt - 1), self.max_rto)
        seed = self.underlay.config.seed
        rng = Random(f"{seed}:rto:{src}:{dst}:{tseq}:{attempt}")
        factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(1, int(base * factor))

    def _transmit(self, src: int, dst: int, tseq: int, attempt: int) -> None:
        """Roll the fate of one data-frame attempt, schedule arrivals."""
        fate = self.underlay.fate(src, dst, f"d:{tseq}:{attempt}", self._now)
        if fate.blocked or fate.dropped:
            self.stats.dropped += 1
            self._log("part" if fate.blocked else "drop", src, dst, tseq, attempt)
            return
        if fate.duplicated:
            self.stats.duplicated += 1
            self._log("dup", src, dst, tseq, attempt)
        if fate.delayed:
            self.stats.delayed += 1
            self._log("delay", src, dst, tseq, attempt)
        for offset in fate.arrivals:
            self._push(self._now + offset, "d", src, dst, tseq)

    def _send_ack(self, src: int, dst: int, tseq: int) -> None:
        """Ack travels dst -> src; lossy like any other frame."""
        rx = self._rx[(src, dst)]
        self.stats.acks += 1
        self._ack_id += 1
        fate = self.underlay.fate(dst, src, f"a:{self._ack_id}", self._now)
        if fate.blocked or fate.dropped:
            self._log("ack_drop", src, dst, tseq, 0)
            return
        for offset in fate.arrivals:
            self._push(self._now + offset, "a", src, dst, rx.floor)

    def _announce(self, dst: int, mseq: int) -> bool:
        """Tell the scheduler the message became deliverable."""
        engine = self.engine
        if engine is None:
            return False
        proc = engine.processes.get(dst)
        if proc is None or proc.state is PState.GONE:
            return False
        if mseq not in engine.channels[dst]:
            return False
        engine.scheduler.notify_send(dst, mseq)
        return True

    # --------------------------------------------------------- event firing

    def _fire(self, event: tuple[int, int, str, int, int, int]) -> bool:
        """Process one due event; True when a message was announced."""
        _due, _eid, kind, src, dst, payload = event
        chan = (src, dst)
        if kind == "r":
            flights = self._flights.get(chan)
            flight = flights.get(payload) if flights else None
            if flight is None:
                return False  # acked or cancelled in the meantime
            engine = self.engine
            proc = engine.processes.get(dst) if engine is not None else None
            if proc is None or proc.state is PState.GONE:
                del flights[payload]
                self._by_mseq.pop(flight.mseq, None)
                self.stats.cancelled_gone += 1
                self._log("cancel", src, dst, payload, flight.attempts)
                return False
            flight.attempts += 1
            self.stats.retransmits += 1
            self._log("rtx", src, dst, payload, flight.attempts)
            self._transmit(src, dst, payload, flight.attempts)
            self._push(
                self._now + self._rto_after(src, dst, payload, flight.attempts),
                "r", src, dst, payload,
            )
            return False
        if kind == "a":
            flights = self._flights.get(chan)
            if not flights:
                return False
            for tseq in [t for t in flights if t <= payload]:
                flight = flights.pop(tseq)
                self._by_mseq.pop(flight.mseq, None)
            return False
        # kind == "d": data frame reaches dst
        rx = self._rx.setdefault(chan, _Rx())
        flights = self._flights.get(chan)
        flight = flights.get(payload) if flights else None
        if not rx.admit(payload):
            self.stats.deduped += 1
            self._log("dedup", src, dst, payload, 0)
            self._send_ack(src, dst, payload)
            return False
        self.stats.delivered += 1
        self._send_ack(src, dst, payload)
        if flight is not None and not flight.announced:
            flight.announced = True
            return self._announce(dst, flight.mseq)
        return False

    # ------------------------------------------------------------ engine API

    def on_post(self, sender: int, dst: int, msg: Message) -> None:
        """Protocol post ``sender -> dst``: open a flight for the frame."""
        chan = (sender, dst)
        tseq = self._next_tseq.get(chan, 0)
        self._next_tseq[chan] = tseq + 1
        flight = _Flight(msg.seq)
        self._flights.setdefault(chan, {})[tseq] = flight
        self._by_mseq[msg.seq] = (sender, dst, tseq)
        self.stats.sends += 1
        self._transmit(sender, dst, tseq, 1)
        self._push(
            self._now + self._rto_after(sender, dst, tseq, 1), "r", sender, dst, tseq
        )

    def flush(self, step: int) -> None:
        """Advance the clock to ``step`` and fire every due event."""
        if step > self._now:
            self._now = step
        events = self._events
        while events and events[0][0] <= self._now:
            self._fire(heapq.heappop(events))

    def on_gone(self, pid: int) -> None:
        """Cancel in-flight frames to a departed process."""
        for (src, dst), flights in self._flights.items():
            if dst != pid or not flights:
                continue
            for tseq, flight in list(flights.items()):
                del flights[tseq]
                self._by_mseq.pop(flight.mseq, None)
                self.stats.cancelled_gone += 1
                self._log("cancel", src, dst, tseq, flight.attempts)

    @property
    def busy(self) -> bool:
        """True while any transport event is still scheduled."""
        return bool(self._events)

    def run_dry(self) -> bool:
        """Fast-forward to due transport events while the scheduler starves.

        Pops events in virtual-time order — advancing the clock past
        step_count, so delayed frames arrive and partitions heal —
        until an announcement gives the scheduler something to select,
        the heap drains, or the safety cap trips (permanently-lossy
        configurations would otherwise spin the retransmit timer).
        Returns True when at least one message was announced.
        """
        events = self._events
        for _ in range(_RUN_DRY_LIMIT):
            if not events:
                return False
            due = events[0][0]
            if due > self._now:
                self._now = due
            if self._fire(heapq.heappop(events)):
                return True
        return False
