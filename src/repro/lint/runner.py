"""File discovery, rule execution, caching, and reporting for ``repro lint``.

Exit codes (CI contract): 0 = clean, 1 = findings, 2 = analysis error
(unparseable file, unknown rule selector).

Caching is per file, keyed by content hash, and *salted* with (a) the
content hash of the lint package itself — editing a rule invalidates
everything — and (b) the fingerprint of the whole discovered file set.
The project fingerprint is what keeps the cache sound in the presence of
whole-program rules (protocol classification, step-reachability, the
mirror registry): a finding in file A can depend on file B, so entries
are only replayed when *no* input changed. That is exactly the common
case the cache exists for (re-runs in CI and pre-commit loops).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from collections.abc import Iterable, Sequence
from typing import TextIO

from repro.lint.callgraph import Project
from repro.lint.model import (
    NOQA_TOKEN_RE,
    Finding,
    Module,
    parse_module,
    rule_registry,
)
from repro.lint.rules import ALL_RULES

__all__ = ["LintResult", "lint_paths", "run_lint"]


def discover_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted list of .py files."""
    out: set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in {"__pycache__", ".git", ".ruff_cache"}
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.add(os.path.join(root, name))
        elif path.endswith(".py"):
            out.add(path)
    return sorted(out)


def module_name_for(path: str) -> str:
    """Derive a dotted module name by walking up through __init__.py dirs."""
    path = os.path.abspath(path)
    parts = [os.path.splitext(os.path.basename(path))[0]]
    parent = os.path.dirname(path)
    while os.path.isfile(os.path.join(parent, "__init__.py")):
        parts.append(os.path.basename(parent))
        parent = os.path.dirname(parent)
    if parts[0] == "__init__":
        parts = parts[1:] or parts
    return ".".join(reversed(parts))


class LintResult:
    """Findings plus the exit code they imply, and run statistics."""

    __slots__ = ("findings", "errors", "stats")

    def __init__(
        self,
        findings: list[Finding],
        errors: list[Finding],
        stats: dict[str, int] | None = None,
    ):
        self.findings = findings
        self.errors = errors
        #: files / cache_hits / cache_misses / elapsed_ms
        self.stats = stats or {}

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.findings else 0


def _selected(rule_id: str, select: Iterable[str], ignore: Iterable[str]) -> bool:
    if any(rule_id.startswith(p) for p in ignore):
        return False
    select = list(select)
    if not select:
        return True
    return any(rule_id.startswith(p) for p in select)


def _noqa_warnings(module: Module, known_ids: Iterable[str]) -> list[Finding]:
    """LINT002: malformed or unknown ids in ``repro: noqa[...]`` specs.

    A suppression that names no real rule suppresses nothing — warning
    (exit 1) instead of silence, so a typo like ``noqa[REF01]`` cannot
    quietly disable the rule it meant to acknowledge.
    """
    known = list(known_ids)
    out: list[Finding] = []
    for line, tokens in sorted(module.noqa_tokens.items()):
        if not tokens:
            out.append(
                Finding(
                    rule="LINT002",
                    path=module.path,
                    line=line,
                    col=0,
                    message=(
                        "empty `repro: noqa[...]` suppression list "
                        "suppresses nothing (use a rule id, a family "
                        "prefix, or bare `repro: noqa`)"
                    ),
                )
            )
            continue
        for token in tokens:
            if not NOQA_TOKEN_RE.match(token):
                out.append(
                    Finding(
                        rule="LINT002",
                        path=module.path,
                        line=line,
                        col=0,
                        message=(
                            f"malformed rule id {token!r} in `repro: noqa` "
                            "suppression (expected e.g. SOA002 or a family "
                            "prefix like DET); it suppresses nothing"
                        ),
                    )
                )
            elif not any(rid.startswith(token) for rid in known):
                out.append(
                    Finding(
                        rule="LINT002",
                        path=module.path,
                        line=line,
                        col=0,
                        message=(
                            f"unknown rule id {token!r} in `repro: noqa` "
                            "suppression: no registered rule matches it"
                        ),
                    )
                )
    return out


# --------------------------------------------------------------------------
# per-file result cache


def _hash_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _file_hash(path: str) -> str:
    with open(path, "rb") as fh:
        return _hash_bytes(fh.read())


_PACKAGE_SALT: str | None = None


def _package_salt() -> str:
    """Content hash of the lint package itself: rule edits invalidate."""
    global _PACKAGE_SALT
    if _PACKAGE_SALT is None:
        pkg_dir = os.path.dirname(os.path.abspath(__file__))
        digest = hashlib.sha256()
        for path in discover_files([pkg_dir]):
            digest.update(path.encode())
            digest.update(_file_hash(path).encode())
        _PACKAGE_SALT = digest.hexdigest()
    return _PACKAGE_SALT


def _load_cache(cache_path: str | None) -> dict:
    if cache_path is None or not os.path.isfile(cache_path):
        return {}
    try:
        with open(cache_path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {}
    return data if isinstance(data, dict) else {}


def _save_cache(cache_path: str | None, data: dict) -> None:
    if cache_path is None:
        return
    tmp = cache_path + ".tmp"
    try:
        os.makedirs(os.path.dirname(os.path.abspath(cache_path)), exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(data, fh)
        os.replace(tmp, cache_path)
    except OSError:
        pass  # caching is best-effort; the lint result stands


def lint_paths(
    paths: Sequence[str],
    *,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    cache_path: str | None = None,
) -> LintResult:
    """Run the analyzer over *paths* and return suppression-filtered findings."""
    started = time.monotonic()
    registry = rule_registry(ALL_RULES)
    known = {rid for rid in registry}
    for prefix in [*select, *ignore]:
        if not any(rid.startswith(prefix) for rid in known):
            return LintResult(
                [],
                [
                    Finding(
                        rule="LINT001",
                        path="<cli>",
                        line=1,
                        col=0,
                        message=f"unknown rule selector {prefix!r}",
                    )
                ],
            )
    files = discover_files(paths)
    hashes = {path: _file_hash(path) for path in files}
    fingerprint = _hash_bytes(
        "\n".join(f"{p}:{hashes[p]}" for p in files).encode()
    )
    salt = _package_salt()
    selector_key = f"select={','.join(select)};ignore={','.join(ignore)}"
    cache = _load_cache(cache_path)
    cache_valid = (
        cache.get("salt") == salt
        and cache.get("fingerprint") == fingerprint
        and cache.get("selectors") == selector_key
    )
    entries = cache.get("files", {}) if cache_valid else {}
    hits = 0
    findings: list[Finding] = []
    errors: list[Finding] = []
    fresh: dict[str, dict] = {}

    cached_paths = [p for p in files if p in entries]
    if len(cached_paths) == len(files):
        # Full replay: every file present under a matching fingerprint.
        for path in files:
            entry = entries[path]
            findings.extend(Finding(**f) for f in entry.get("findings", ()))
            errors.extend(Finding(**f) for f in entry.get("errors", ()))
            hits += 1
        findings.sort(key=Finding.sort_key)
        errors.sort(key=Finding.sort_key)
        elapsed_ms = int((time.monotonic() - started) * 1000)
        return LintResult(
            findings,
            errors,
            {
                "files": len(files),
                "cache_hits": hits,
                "cache_misses": 0,
                "elapsed_ms": elapsed_ms,
            },
        )

    modules: list[Module] = []
    for path in files:
        parsed = parse_module(path, module_name_for(path))
        if isinstance(parsed, Finding):
            errors.append(parsed)
            fresh[path] = {"findings": [], "errors": [parsed.to_dict()]}
        else:
            modules.append(parsed)
    project = Project(modules)
    for module in modules:
        module_findings: list[Finding] = []
        for rule in registry.values():
            if not _selected(rule.id, select, ignore):
                continue
            for finding in rule.check(module, project):
                if not module.suppressed(finding):
                    module_findings.append(finding)
        # Suppression-hygiene warnings ride along unconditionally: they
        # are about the noqa comments themselves, not any selected rule.
        module_findings.extend(_noqa_warnings(module, known))
        findings.extend(module_findings)
        fresh[module.path] = {
            "findings": [f.to_dict() for f in module_findings],
            "errors": [],
        }
    findings.sort(key=Finding.sort_key)
    errors.sort(key=Finding.sort_key)
    _save_cache(
        cache_path,
        {
            "salt": salt,
            "fingerprint": fingerprint,
            "selectors": selector_key,
            "files": fresh,
        },
    )
    elapsed_ms = int((time.monotonic() - started) * 1000)
    return LintResult(
        findings,
        errors,
        {
            "files": len(files),
            "cache_hits": hits,
            "cache_misses": len(files),
            "elapsed_ms": elapsed_ms,
        },
    )


def _render_github(finding: Finding) -> str:
    """One GitHub Actions workflow-command annotation per finding."""
    # Commas and colons are significant in the command header; the
    # message body only needs newline escaping.
    message = finding.message.replace("%", "%25").replace("\n", "%0A")
    return (
        f"::error file={finding.path},line={finding.line},"
        f"col={finding.col},title={finding.rule}::{message}"
    )


def run_lint(
    paths: Sequence[str],
    *,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    output_format: str = "text",
    stream: TextIO | None = None,
    cache_path: str | None = None,
    show_stats: bool = False,
) -> int:
    """CLI entry: lint, report, return the exit code."""
    stream = stream if stream is not None else sys.stdout
    result = lint_paths(
        paths, select=select, ignore=ignore, cache_path=cache_path
    )
    everything = [*result.errors, *result.findings]
    if output_format == "json":
        json.dump(
            {
                "findings": [f.to_dict() for f in everything],
                "count": len(everything),
                "exit_code": result.exit_code,
                "stats": result.stats,
            },
            stream,
            indent=2,
        )
        stream.write("\n")
    elif output_format == "github":
        for finding in everything:
            stream.write(_render_github(finding) + "\n")
        noun = "finding" if len(everything) == 1 else "findings"
        stream.write(f"{len(everything)} {noun}\n")
    else:
        for finding in everything:
            stream.write(finding.render() + "\n")
        noun = "finding" if len(everything) == 1 else "findings"
        stream.write(f"{len(everything)} {noun}\n")
    if show_stats and result.stats:
        s = result.stats
        stream.write(
            f"[lint] {s.get('files', 0)} files in {s.get('elapsed_ms', 0)} ms "
            f"(cache: {s.get('cache_hits', 0)} hits, "
            f"{s.get('cache_misses', 0)} misses)\n"
        )
    return result.exit_code


def list_rules(stream: TextIO | None = None) -> int:
    """Print the rule catalogue (id, title, rationale)."""
    stream = stream if stream is not None else sys.stdout
    for rule in rule_registry(ALL_RULES).values():
        stream.write(f"{rule.id}  {rule.title}\n")
        stream.write(f"        {rule.rationale}\n")
    return 0
