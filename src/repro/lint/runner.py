"""File discovery, rule execution, and reporting for ``repro lint``.

Exit codes (CI contract): 0 = clean, 1 = findings, 2 = analysis error
(unparseable file, unknown rule selector).
"""

from __future__ import annotations

import json
import os
import sys
from collections.abc import Iterable, Sequence
from typing import TextIO

from repro.lint.callgraph import Project
from repro.lint.model import Finding, Module, parse_module, rule_registry
from repro.lint.rules import ALL_RULES

__all__ = ["LintResult", "lint_paths", "run_lint"]


def discover_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted list of .py files."""
    out: set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in {"__pycache__", ".git", ".ruff_cache"}
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.add(os.path.join(root, name))
        elif path.endswith(".py"):
            out.add(path)
    return sorted(out)


def module_name_for(path: str) -> str:
    """Derive a dotted module name by walking up through __init__.py dirs."""
    path = os.path.abspath(path)
    parts = [os.path.splitext(os.path.basename(path))[0]]
    parent = os.path.dirname(path)
    while os.path.isfile(os.path.join(parent, "__init__.py")):
        parts.append(os.path.basename(parent))
        parent = os.path.dirname(parent)
    if parts[0] == "__init__":
        parts = parts[1:] or parts
    return ".".join(reversed(parts))


class LintResult:
    """Findings plus the exit code they imply."""

    __slots__ = ("findings", "errors")

    def __init__(self, findings: list[Finding], errors: list[Finding]):
        self.findings = findings
        self.errors = errors

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.findings else 0


def _selected(rule_id: str, select: Iterable[str], ignore: Iterable[str]) -> bool:
    if any(rule_id.startswith(p) for p in ignore):
        return False
    select = list(select)
    if not select:
        return True
    return any(rule_id.startswith(p) for p in select)


def lint_paths(
    paths: Sequence[str],
    *,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
) -> LintResult:
    """Run the analyzer over *paths* and return suppression-filtered findings."""
    registry = rule_registry(ALL_RULES)
    known = {rid for rid in registry}
    for prefix in [*select, *ignore]:
        if not any(rid.startswith(prefix) for rid in known):
            return LintResult(
                [],
                [
                    Finding(
                        rule="LINT001",
                        path="<cli>",
                        line=1,
                        col=0,
                        message=f"unknown rule selector {prefix!r}",
                    )
                ],
            )
    modules: list[Module] = []
    errors: list[Finding] = []
    for path in discover_files(paths):
        parsed = parse_module(path, module_name_for(path))
        if isinstance(parsed, Finding):
            errors.append(parsed)
        else:
            modules.append(parsed)
    project = Project(modules)
    findings: list[Finding] = []
    for module in modules:
        for rule in registry.values():
            if not _selected(rule.id, select, ignore):
                continue
            for finding in rule.check(module, project):
                if not module.suppressed(finding):
                    findings.append(finding)
    findings.sort(key=Finding.sort_key)
    errors.sort(key=Finding.sort_key)
    return LintResult(findings, errors)


def run_lint(
    paths: Sequence[str],
    *,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    output_format: str = "text",
    stream: TextIO | None = None,
) -> int:
    """CLI entry: lint, report, return the exit code."""
    stream = stream if stream is not None else sys.stdout
    result = lint_paths(paths, select=select, ignore=ignore)
    everything = [*result.errors, *result.findings]
    if output_format == "json":
        json.dump(
            {
                "findings": [f.to_dict() for f in everything],
                "count": len(everything),
                "exit_code": result.exit_code,
            },
            stream,
            indent=2,
        )
        stream.write("\n")
    else:
        for finding in everything:
            stream.write(finding.render() + "\n")
        noun = "finding" if len(everything) == 1 else "findings"
        stream.write(f"{len(everything)} {noun}\n")
    return result.exit_code


def list_rules(stream: TextIO | None = None) -> int:
    """Print the rule catalogue (id, title, rationale)."""
    stream = stream if stream is not None else sys.stdout
    for rule in rule_registry(ALL_RULES).values():
        stream.write(f"{rule.id}  {rule.title}\n")
        stream.write(f"        {rule.rationale}\n")
    return 0
