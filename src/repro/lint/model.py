"""Core data model of the ``repro lint`` static analyzer.

The analyzer is a stdlib-``ast`` pass over the package source: no third
party dependencies, so it runs everywhere the simulator runs (including
the offline CI smoke jobs). The pieces here are shared by every rule:

* :class:`Module` — one parsed source file plus its suppression table;
* :class:`Finding` — one diagnostic, pointing at a file/line/column;
* :class:`Rule` — the interface rules implement, with a registry;
* the ``# repro: noqa[REF002]`` suppression syntax (see docs/LINT.md).

Suppressions are line-scoped and *rule-scoped by prefix*: a comment
``# repro: noqa[DET004]`` silences exactly that rule on its line,
``# repro: noqa[DET]`` silences the whole family, and a bare
``# repro: noqa`` silences everything. Justified suppressions are part
of the contract — each one in the tree states the invariant that makes
the flagged code safe.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.callgraph import Project

__all__ = [
    "Finding",
    "Module",
    "NOQA_TOKEN_RE",
    "Rule",
    "attr_chain",
    "parse_module",
    "rule_registry",
]

#: ``# repro: noqa`` or ``# repro: noqa[REF002]`` or ``# repro: noqa[REF, DET004]``.
#: The bracket group is permissive on purpose: a malformed spec like
#: ``noqa[ref001]`` must be *seen* (and warned about as LINT002), not
#: fall back to matching the bare ``noqa`` prefix — the old strict
#: pattern did exactly that, silently blanket-suppressing every rule on
#: the line.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(\[([^\]]*)\])?")

#: a single well-formed suppression token: a rule id or family prefix.
NOQA_TOKEN_RE = re.compile(r"^[A-Z]+[0-9]*$")


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a rule."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class Module:
    """A parsed source file plus its per-line suppression table."""

    __slots__ = ("path", "name", "tree", "lines", "noqa", "noqa_tokens")

    def __init__(self, path: str, name: str, tree: ast.Module, lines: list[str]):
        self.path = path
        self.name = name
        self.tree = tree
        self.lines = lines
        #: line → frozenset of suppressed rule prefixes; empty set = all.
        self.noqa: dict[int, frozenset[str]] = {}
        #: line → raw bracket tokens as written (for LINT002 validation:
        #: malformed or unknown ids warn instead of silently suppressing).
        self.noqa_tokens: dict[int, tuple[str, ...]] = {}
        for idx, text in enumerate(lines, start=1):
            m = _NOQA_RE.search(text)
            if m is None:
                continue
            if m.group(1) is None:  # bare ``# repro: noqa``
                self.noqa[idx] = frozenset()
                continue
            tokens = tuple(
                tok.strip() for tok in m.group(2).split(",") if tok.strip()
            )
            self.noqa_tokens[idx] = tokens
            valid = frozenset(t for t in tokens if NOQA_TOKEN_RE.match(t))
            # Only well-formed tokens suppress; a spec containing nothing
            # valid suppresses nothing (and the runner warns).
            if valid:
                self.noqa[idx] = valid

    def suppressed(self, finding: Finding) -> bool:
        prefixes = self.noqa.get(finding.line)
        if prefixes is None:
            return False
        if not prefixes:  # bare ``# repro: noqa``
            return True
        return any(finding.rule.startswith(p) for p in prefixes)


def parse_module(path: str, name: str) -> Module | Finding:
    """Parse one file; on a syntax error return a LINT000 finding instead."""
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return Finding(
            rule="LINT000",
            path=path,
            line=exc.lineno or 1,
            col=exc.offset or 0,
            message=f"syntax error: {exc.msg}",
        )
    return Module(path, name, tree, source.splitlines())


class Rule:
    """Base class for analyzer rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``rationale`` records the shipped bug or paper invariant the rule
    guards — it is surfaced by ``repro lint --list-rules`` and in
    docs/LINT.md so every diagnostic is traceable to its provenance.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def rule_registry(rules: Iterable[type[Rule]]) -> dict[str, Rule]:
    """Instantiate rule classes into an id-keyed registry."""
    out: dict[str, Rule] = {}
    for cls in rules:
        inst = cls()
        if not inst.id:
            raise ValueError(f"rule {cls.__name__} has no id")
        if inst.id in out:
            raise ValueError(f"duplicate rule id {inst.id}")
        out[inst.id] = inst
    return out


def attr_chain(node: ast.AST) -> str | None:
    """Render ``a.b.c`` for a Name/Attribute chain, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
