"""``repro lint`` — AST-based model-conformance and determinism analyzer.

Static checks (stdlib ``ast`` only, no third-party dependencies) that
enforce the invariants the reproduction's correctness arguments rest on:
the copy-store-send reference discipline and reversal bookkeeping
(REF0xx), hot-path determinism (DET0xx), the PR 2 allocation-free step
loop (PERF0xx), and the class-𝒫 interaction grammar (API0xx).

See docs/LINT.md for the rule catalogue and suppression syntax
(``# repro: noqa[REF002]``).
"""

from __future__ import annotations

from repro.lint.model import Finding, Module, Rule, parse_module
from repro.lint.rules import ALL_RULES
from repro.lint.runner import LintResult, lint_paths, run_lint

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintResult",
    "Module",
    "Rule",
    "lint_paths",
    "parse_module",
    "run_lint",
]
