"""Import-graph and call-graph index used to scope the analyzer's rules.

Three whole-program questions the per-file rules cannot answer alone:

* **Which modules are protocol code?** Modules defining a (transitive)
  subclass of ``Process`` or ``OverlayLogic`` — resolved by class-name
  hierarchy analysis, so a standalone fixture file that writes
  ``class Bad(FDPProcess): ...`` is classified without imports resolving.
* **Which modules are on the engine hot path?** The transitive import
  closure of the hot seeds (``repro.sim.engine`` plus the per-step
  observation/oracle modules) together with the protocol modules. The
  determinism rules only fire there: wall-clock reads in an offline
  analysis script are fine, in the step loop they are not.
* **Which functions run inside ``Engine.step``?** A name-based CHA
  (class-hierarchy-analysis) call graph: an edge ``f → g`` exists when
  ``f`` contains a call whose callee's bare name matches ``g``. Dynamic
  dispatch (``proc.timeout(ctx)``, ``self.logic.p_timeout(...)``) is
  exactly what the engine does, so matching by bare attribute name is
  the right over-approximation. Roots are ``Engine.step`` and every
  action method of a protocol class (``timeout``/``on_*``/``handle*`` —
  the engine invokes those through pooled dispatch tables the name
  matcher cannot see through).

Over-approximation is deliberate: the hot-path rules guard invariants
(``__slots__``, no per-call closures) that are cheap to satisfy, so a
few extra reachable functions cost nothing, while under-approximation
would silently stop guarding the PR 2 allocation-free step loop.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable

from repro.lint.model import Module, attr_chain

__all__ = ["ClassInfo", "FuncInfo", "Project"]

#: modules whose import closure is the engine hot path. ``oracles`` and
#: ``monitors`` run inside atomic actions via dynamic dispatch, which the
#: import closure of ``engine`` alone would miss.
HOT_SEED_MODULES = (
    "repro.sim.engine",
    "repro.core.oracles",
    "repro.sim.monitors",
)

#: base-class names that make a class "protocol code".
PROTOCOL_BASES = frozenset({"Process", "OverlayLogic"})

#: methods the engine reaches via dispatch tables (call-graph roots).
_ACTION_NAME_RE = re.compile(r"^(on_|handle|_handle|timeout$|p_timeout$)")

#: (class, method) entry points of the SoA execution core. The engine
#: swaps ``step()`` for these per-population batch drivers when a
#: protocol is core-eligible, so they are step-loop roots in their own
#: right — without them the whole int-kernel side of soa.py sat outside
#: ``step_reachable`` and the PERF hot-path rules silently skipped it.
CORE_ENTRY_POINTS = frozenset(
    {
        ("EngineCore", "run_batch"),
        ("EngineCore", "mirror_step"),
    }
)

_ENUM_LIKE = frozenset(
    {"Enum", "IntEnum", "StrEnum", "Flag", "IntFlag", "NamedTuple", "Protocol", "ABC"}
)
_EXC_LIKE = frozenset({"Exception", "BaseException"})
_EXC_NAME_RE = re.compile(r"(Error|Exception|Violation|Warning)$")


class ClassInfo:
    """One class definition: bases, slots declaration, location."""

    __slots__ = ("module", "name", "qualname", "node", "base_names", "has_slots")

    def __init__(self, module: Module, node: ast.ClassDef, qualname: str):
        self.module = module
        self.name = node.name
        self.qualname = qualname
        self.node = node
        self.base_names: list[str] = []
        for base in node.bases:
            chain = attr_chain(base)
            if chain:
                self.base_names.append(chain)
        self.has_slots = self._detect_slots(node)

    @staticmethod
    def _detect_slots(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for tgt in targets:
                if isinstance(tgt, ast.Name) and tgt.id == "__slots__":
                    return True
        for deco in node.decorator_list:
            if isinstance(deco, ast.Call):
                name = attr_chain(deco.func)
                if name and name.split(".")[-1] == "dataclass":
                    for kw in deco.keywords:
                        if (
                            kw.arg == "slots"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True
                        ):
                            return True
        return False


class FuncInfo:
    """One function/method: bare callee names and nested definitions."""

    __slots__ = ("module", "name", "qualname", "node", "cls", "callees", "nested")

    def __init__(
        self,
        module: Module,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        cls: str | None,
    ):
        self.module = module
        self.name = node.name
        self.qualname = qualname
        self.node = node
        self.cls = cls
        self.callees: set[str] = set()
        self.nested: list[str] = []  # qualnames of directly nested defs


def _own_statements(node: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested def/class."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(child))


class Project:
    """Whole-program index over a set of parsed modules."""

    def __init__(self, modules: Iterable[Module]):
        self.modules: dict[str, Module] = {m.name: m for m in modules}
        self.imports: dict[str, set[str]] = {}
        #: per-module local-name → dotted-target map (imports only).
        self.aliases: dict[str, dict[str, str]] = {}
        self.classes: dict[str, ClassInfo] = {}  # qualname-keyed
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        self.functions: dict[str, FuncInfo] = {}  # qualname-keyed
        self.functions_by_name: dict[str, list[FuncInfo]] = {}
        for mod in self.modules.values():
            self._index_module(mod)
        self._protocol_modules: set[str] | None = None
        self._hot_modules: set[str] | None = None
        self._step_reachable: set[str] | None = None

    # ------------------------------------------------------------------ indexing

    def _index_module(self, mod: Module) -> None:
        imported: set[str] = set()
        aliases: dict[str, str] = {}
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imported.add(alias.name)
                    aliases[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom):
                target = node.module or ""
                if node.level:
                    parts = mod.name.split(".")
                    base = parts[: len(parts) - node.level]
                    target = ".".join([*base, target]) if target else ".".join(base)
                if target:
                    imported.add(target)
                    for alias in node.names:
                        aliases[alias.asname or alias.name] = f"{target}.{alias.name}"
        self.imports[mod.name] = {t for t in imported if t in self.modules}
        self.aliases[mod.name] = aliases
        self._index_defs(mod, mod.tree, prefix=mod.name, cls=None)

    def _index_defs(
        self, mod: Module, node: ast.AST, prefix: str, cls: str | None
    ) -> FuncInfo | None:
        """Recursively index class and function definitions."""
        parent_fn: FuncInfo | None = None
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                qual = f"{prefix}.{child.name}"
                info = ClassInfo(mod, child, qual)
                self.classes[qual] = info
                self.classes_by_name.setdefault(child.name, []).append(info)
                self._index_defs(mod, child, prefix=qual, cls=child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{child.name}"
                fn = FuncInfo(mod, child, qual, cls)
                self.functions[qual] = fn
                self.functions_by_name.setdefault(child.name, []).append(fn)
                for sub in _own_statements(child):
                    if isinstance(sub, ast.Call):
                        chain = attr_chain(sub.func)
                        if chain:
                            fn.callees.add(chain.split(".")[-1])
                    elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        nested = self._index_defs_nested(mod, sub, qual, cls)
                        fn.nested.append(nested.qualname)
        return parent_fn

    def _index_defs_nested(
        self,
        mod: Module,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        prefix: str,
        cls: str | None,
    ) -> FuncInfo:
        qual = f"{prefix}.<locals>.{node.name}"
        fn = FuncInfo(mod, node, qual, cls)
        self.functions[qual] = fn
        self.functions_by_name.setdefault(node.name, []).append(fn)
        for sub in _own_statements(node):
            if isinstance(sub, ast.Call):
                chain = attr_chain(sub.func)
                if chain:
                    fn.callees.add(chain.split(".")[-1])
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = self._index_defs_nested(mod, sub, qual, cls)
                fn.nested.append(nested.qualname)
        return fn

    # ------------------------------------------------------------------ hierarchy

    def mro_reaches(self, cls: ClassInfo, targets: frozenset[str]) -> bool:
        """Whether the (name-resolved) base chain reaches any target name."""
        seen: set[str] = set()
        stack = [name.split(".")[-1] for name in cls.base_names]
        while stack:
            name = stack.pop()
            if name in targets:
                return True
            if name in seen:
                continue
            seen.add(name)
            for info in self.classes_by_name.get(name, ()):
                stack.extend(n.split(".")[-1] for n in info.base_names)
        return False

    def is_protocol_class(self, cls: ClassInfo) -> bool:
        return self.mro_reaches(cls, PROTOCOL_BASES)

    def is_overlay_logic_class(self, cls: ClassInfo) -> bool:
        return self.mro_reaches(cls, frozenset({"OverlayLogic"}))

    def is_exception_class(self, cls: ClassInfo) -> bool:
        if _EXC_NAME_RE.search(cls.name):
            return True
        seen: set[str] = set()
        stack = [n.split(".")[-1] for n in cls.base_names]
        while stack:
            name = stack.pop()
            if name in _EXC_LIKE or _EXC_NAME_RE.search(name):
                return True
            if name in seen:
                continue
            seen.add(name)
            for info in self.classes_by_name.get(name, ()):
                stack.extend(n.split(".")[-1] for n in info.base_names)
        return False

    def is_enum_like(self, cls: ClassInfo) -> bool:
        return self.mro_reaches(cls, _ENUM_LIKE) or any(
            b.split(".")[-1] in _ENUM_LIKE for b in cls.base_names
        )

    # ------------------------------------------------------------------ scoping

    @property
    def protocol_modules(self) -> set[str]:
        if self._protocol_modules is None:
            out: set[str] = set()
            for cls in self.classes.values():
                if self.is_protocol_class(cls):
                    out.add(cls.module.name)
            self._protocol_modules = out
        return self._protocol_modules

    @property
    def hot_modules(self) -> set[str]:
        """Transitive import closure of the hot seeds + protocol modules."""
        if self._hot_modules is None:
            seeds = [m for m in HOT_SEED_MODULES if m in self.modules]
            seeds.extend(self.protocol_modules)
            closed: set[str] = set()
            stack = list(seeds)
            while stack:
                name = stack.pop()
                if name in closed:
                    continue
                closed.add(name)
                stack.extend(self.imports.get(name, ()))
            self._hot_modules = closed
        return self._hot_modules

    def is_hot(self, module: Module) -> bool:
        return module.name in self.hot_modules

    def is_protocol(self, module: Module) -> bool:
        return module.name in self.protocol_modules

    # ------------------------------------------------------------------ reachability

    @property
    def step_reachable(self) -> set[str]:
        """Qualnames of functions reachable from ``Engine.step`` and the
        protocol action methods, via the name-based call graph."""
        if self._step_reachable is None:
            protocol_classes = {
                cls.name for cls in self.classes.values() if self.is_protocol_class(cls)
            }
            protocol_classes.update(PROTOCOL_BASES)
            roots: list[str] = []
            for fn in self.functions.values():
                if fn.cls == "Engine" and fn.name == "step":
                    roots.append(fn.qualname)
                elif fn.cls is not None and (fn.cls, fn.name) in CORE_ENTRY_POINTS:
                    roots.append(fn.qualname)
                elif fn.cls in protocol_classes and _ACTION_NAME_RE.match(fn.name):
                    roots.append(fn.qualname)
            reached: set[str] = set()
            stack = list(roots)
            while stack:
                qual = stack.pop()
                if qual in reached:
                    continue
                reached.add(qual)
                fn = self.functions.get(qual)
                if fn is None:
                    continue
                stack.extend(fn.nested)
                for callee in fn.callees:
                    for target in self.functions_by_name.get(callee, ()):
                        if target.qualname not in reached:
                            stack.append(target.qualname)
            self._step_reachable = reached
        return self._step_reachable

    def is_step_reachable(self, qualname: str) -> bool:
        return qualname in self.step_reachable

    # ------------------------------------------------------------------ resolution

    def resolve_class(self, module: Module, call: ast.Call) -> ClassInfo | None:
        """Resolve a call's callee to a project class, or None."""
        chain = attr_chain(call.func)
        if chain is None:
            return None
        aliases = self.aliases.get(module.name, {})
        head = chain.split(".")[0]
        dotted = chain
        if head in aliases:
            dotted = aliases[head] + chain[len(head) :]
        info = self.classes.get(dotted)
        if info is not None:
            return info
        bare = chain.split(".")[-1]
        info = self.classes.get(f"{module.name}.{bare}")
        if info is not None:
            return info
        candidates = self.classes_by_name.get(bare, ())
        if len(candidates) == 1:
            return candidates[0]
        return None
