"""PERF0xx — hot-path hygiene rules.

PR 2 made the step loop allocation-free (pooled ``ActionContext``,
``__slots__`` everywhere on the step path, no per-delivery closures) and
the benchmarks gate on it. These rules keep that invariant from
regressing silently: they walk the name-based call graph from
``Engine.step`` and the protocol action methods (see
``lint/callgraph.py``) and check every function reachable from there.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.lint.callgraph import _own_statements
from repro.lint.model import Finding, Module, Rule, attr_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.callgraph import Project

__all__ = ["SlotsOnStepPath", "ClosureOnStepPath", "SnapshotInObservationPath"]


class SlotsOnStepPath(Rule):
    id = "PERF001"
    title = "step-path classes must declare __slots__"
    rationale = (
        "A class instantiated inside Engine.step's call graph without "
        "__slots__ carries a per-instance __dict__: more allocation, "
        "worse cache locality, and it breaks the PR 2 allocation-budget "
        "benchmarks. Declare __slots__ or @dataclass(slots=True)."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        seen: set[str] = set()
        for fn in project.functions.values():
            if fn.module is not module or not project.is_step_reachable(fn.qualname):
                continue
            for node in _own_statements(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                cls = project.resolve_class(module, node)
                if cls is None or cls.qualname in seen or cls.has_slots:
                    continue
                if project.is_exception_class(cls) or project.is_enum_like(cls):
                    continue
                # A base we cannot resolve may bring its own __dict__ (or
                # its own slots); only judge fully-resolvable hierarchies.
                if any(
                    b.split(".")[-1] not in project.classes_by_name
                    and b.split(".")[-1] != "object"
                    for b in cls.base_names
                ):
                    continue
                seen.add(cls.qualname)
                yield self.finding(
                    module,
                    node,
                    f"class {cls.name!r} ({cls.module.path}:"
                    f"{cls.node.lineno}) is instantiated on the step "
                    "path but declares no __slots__",
                )


class ClosureOnStepPath(Rule):
    id = "PERF002"
    title = "no per-call closures on the step path"
    rationale = (
        "A lambda or nested def allocates a function object (plus cells) "
        "every call; in handlers and timeouts that is per-message cost. "
        "PR 2 removed these from the loop — hoist to a bound method or a "
        "table built in __init__."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for fn in project.functions.values():
            if fn.module is not module or not project.is_step_reachable(fn.qualname):
                continue
            if "<locals>" in fn.qualname:
                # The nested def itself was already reported at its
                # definition site inside the parent.
                continue
            for node in _own_statements(fn.node):
                if isinstance(node, ast.Lambda):
                    yield self.finding(
                        module,
                        node,
                        f"lambda allocated per call in step-path function "
                        f"{fn.name!r}",
                    )
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield self.finding(
                        module,
                        node,
                        f"nested function {node.name!r} allocated per call "
                        f"in step-path function {fn.name!r}",
                    )


#: classes whose methods are per-step observation code: monitors, metric
#: probes/recorders, tracers and trace sinks, provenance trackers.
_OBS_CLASS_RE = re.compile(r"(Monitor|Recorder|Tracer|Tracker|Sink|Probe|Auditor)$")
#: free functions that are metric probes by convention.
_OBS_FN_RE = re.compile(r"^_?probe")
#: module-level dicts of probes (``STANDARD_PROBES`` and friends).
_PROBES_NAME_RE = re.compile(r"PROBES")
#: calls that materialize a full graph snapshot.
_SNAPSHOT_NAMES = frozenset({"snapshot", "rebuild_snapshot", "materialize"})
#: engine collections whose full iteration is an O(n) scan.
_SCAN_ATTRS = frozenset({"processes", "channels"})


class SnapshotInObservationPath(Rule):
    id = "PERF003"
    title = "no snapshots or full scans in observation code"
    rationale = (
        "The shipped STANDARD_PROBES scanned every process per sample "
        "('gone'/'asleep') and rebuilt a full snapshot per sample "
        "('edges'), silently undoing the O(delta) live-graph observation "
        "path for every monitored run. Probes, monitors, tracers and "
        "sinks must read the engine's O(1) counters (gone_count, "
        "asleep_count, edge_count, pending_count, potential()) instead "
        "of calling snapshot()/materialize() or iterating "
        "engine.processes / engine.channels."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for fn in project.functions.values():
            if fn.module is not module or "<locals>" in fn.qualname:
                continue
            in_obs_class = fn.cls is not None and _OBS_CLASS_RE.search(fn.cls)
            if not in_obs_class and not _OBS_FN_RE.match(fn.name):
                continue
            where = f"{fn.cls}.{fn.name}" if fn.cls else fn.name
            for node in _own_statements(fn.node):
                message = self._offense(node, where)
                if message is not None:
                    yield self.finding(module, node, message)
        # Probe tables: lambdas inside ``*PROBES*`` dict literals are not
        # indexed as functions, so scan the assigned values directly.
        for stmt in module.tree.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            if not any(
                isinstance(t, ast.Name) and _PROBES_NAME_RE.search(t.id)
                for t in targets
            ):
                continue
            value = stmt.value
            assert value is not None
            name = next(
                t.id for t in targets if isinstance(t, ast.Name)
            )
            for node in ast.walk(value):
                message = self._offense(node, f"probe table {name}")
                if message is not None:
                    yield self.finding(module, node, message)

    @staticmethod
    def _offense(node: ast.AST, where: str) -> str | None:
        if isinstance(node, ast.Call):
            chain = attr_chain(node.func)
            if chain is not None and chain.split(".")[-1] in _SNAPSHOT_NAMES:
                return (
                    f"{where} materializes a graph snapshot per sample "
                    f"({chain}()); read the live O(1) counters instead"
                )
            return None
        it: ast.expr | None = None
        if isinstance(node, ast.For):
            it = node.iter
        elif isinstance(node, ast.comprehension):
            it = node.iter
        if it is None:
            return None
        chain = attr_chain(it)
        if chain is None and isinstance(it, ast.Call):
            chain = attr_chain(it.func)
        if chain is not None and _SCAN_ATTRS & set(chain.split(".")):
            return (
                f"{where} iterates {chain} — an O(n) full scan per "
                "sample; read the engine's O(1) lifecycle/graph counters"
            )
        return None
