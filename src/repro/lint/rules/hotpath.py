"""PERF0xx — hot-path hygiene rules.

PR 2 made the step loop allocation-free (pooled ``ActionContext``,
``__slots__`` everywhere on the step path, no per-delivery closures) and
the benchmarks gate on it. These rules keep that invariant from
regressing silently: they walk the name-based call graph from
``Engine.step`` and the protocol action methods (see
``lint/callgraph.py``) and check every function reachable from there.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.lint.callgraph import _own_statements
from repro.lint.model import Finding, Module, Rule, attr_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.callgraph import Project

__all__ = [
    "SlotsOnStepPath",
    "ClosureOnStepPath",
    "SnapshotInObservationPath",
    "RefKeyedContainerOnStepPath",
]


class SlotsOnStepPath(Rule):
    id = "PERF001"
    title = "step-path classes must declare __slots__"
    rationale = (
        "A class instantiated inside Engine.step's call graph without "
        "__slots__ carries a per-instance __dict__: more allocation, "
        "worse cache locality, and it breaks the PR 2 allocation-budget "
        "benchmarks. Declare __slots__ or @dataclass(slots=True)."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        seen: set[str] = set()
        for fn in project.functions.values():
            if fn.module is not module or not project.is_step_reachable(fn.qualname):
                continue
            for node in _own_statements(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                cls = project.resolve_class(module, node)
                if cls is None or cls.qualname in seen or cls.has_slots:
                    continue
                if project.is_exception_class(cls) or project.is_enum_like(cls):
                    continue
                # A base we cannot resolve may bring its own __dict__ (or
                # its own slots); only judge fully-resolvable hierarchies.
                if any(
                    b.split(".")[-1] not in project.classes_by_name
                    and b.split(".")[-1] != "object"
                    for b in cls.base_names
                ):
                    continue
                seen.add(cls.qualname)
                yield self.finding(
                    module,
                    node,
                    f"class {cls.name!r} ({cls.module.path}:"
                    f"{cls.node.lineno}) is instantiated on the step "
                    "path but declares no __slots__",
                )


class ClosureOnStepPath(Rule):
    id = "PERF002"
    title = "no per-call closures on the step path"
    rationale = (
        "A lambda or nested def allocates a function object (plus cells) "
        "every call; in handlers and timeouts that is per-message cost. "
        "PR 2 removed these from the loop — hoist to a bound method or a "
        "table built in __init__."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for fn in project.functions.values():
            if fn.module is not module or not project.is_step_reachable(fn.qualname):
                continue
            if "<locals>" in fn.qualname:
                # The nested def itself was already reported at its
                # definition site inside the parent.
                continue
            for node in _own_statements(fn.node):
                if isinstance(node, ast.Lambda):
                    yield self.finding(
                        module,
                        node,
                        f"lambda allocated per call in step-path function "
                        f"{fn.name!r}",
                    )
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield self.finding(
                        module,
                        node,
                        f"nested function {node.name!r} allocated per call "
                        f"in step-path function {fn.name!r}",
                    )


#: classes whose methods are per-step observation code: monitors, metric
#: probes/recorders, tracers and trace sinks, provenance trackers.
_OBS_CLASS_RE = re.compile(r"(Monitor|Recorder|Tracer|Tracker|Sink|Probe|Auditor)$")
#: free functions that are metric probes by convention.
_OBS_FN_RE = re.compile(r"^_?probe")
#: module-level dicts of probes (``STANDARD_PROBES`` and friends).
_PROBES_NAME_RE = re.compile(r"PROBES")
#: calls that materialize a full graph snapshot.
_SNAPSHOT_NAMES = frozenset({"snapshot", "rebuild_snapshot", "materialize"})
#: engine collections whose full iteration is an O(n) scan.
_SCAN_ATTRS = frozenset({"processes", "channels"})


class SnapshotInObservationPath(Rule):
    id = "PERF003"
    title = "no snapshots or full scans in observation code"
    rationale = (
        "The shipped STANDARD_PROBES scanned every process per sample "
        "('gone'/'asleep') and rebuilt a full snapshot per sample "
        "('edges'), silently undoing the O(delta) live-graph observation "
        "path for every monitored run. Probes, monitors, tracers and "
        "sinks must read the engine's O(1) counters (gone_count, "
        "asleep_count, edge_count, pending_count, potential()) instead "
        "of calling snapshot()/materialize() or iterating "
        "engine.processes / engine.channels."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for fn in project.functions.values():
            if fn.module is not module or "<locals>" in fn.qualname:
                continue
            in_obs_class = fn.cls is not None and _OBS_CLASS_RE.search(fn.cls)
            if not in_obs_class and not _OBS_FN_RE.match(fn.name):
                continue
            where = f"{fn.cls}.{fn.name}" if fn.cls else fn.name
            for node in _own_statements(fn.node):
                message = self._offense(node, where)
                if message is not None:
                    yield self.finding(module, node, message)
        # Probe tables: lambdas inside ``*PROBES*`` dict literals are not
        # indexed as functions, so scan the assigned values directly.
        for stmt in module.tree.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            if not any(
                isinstance(t, ast.Name) and _PROBES_NAME_RE.search(t.id)
                for t in targets
            ):
                continue
            value = stmt.value
            assert value is not None
            name = next(
                t.id for t in targets if isinstance(t, ast.Name)
            )
            for node in ast.walk(value):
                message = self._offense(node, f"probe table {name}")
                if message is not None:
                    yield self.finding(module, node, message)

    @staticmethod
    def _offense(node: ast.AST, where: str) -> str | None:
        if isinstance(node, ast.Call):
            chain = attr_chain(node.func)
            if chain is not None and chain.split(".")[-1] in _SNAPSHOT_NAMES:
                return (
                    f"{where} materializes a graph snapshot per sample "
                    f"({chain}()); read the live O(1) counters instead"
                )
            return None
        it: ast.expr | None = None
        if isinstance(node, ast.For):
            it = node.iter
        elif isinstance(node, ast.comprehension):
            it = node.iter
        if it is None:
            return None
        chain = attr_chain(it)
        if chain is None and isinstance(it, ast.Call):
            chain = attr_chain(it.func)
        if chain is not None and _SCAN_ATTRS & set(chain.split(".")):
            return (
                f"{where} iterates {chain} — an O(n) full scan per "
                "sample; read the engine's O(1) lifecycle/graph counters"
            )
        return None


#: key/element expressions that carry a Ref by name (``ref``, ``info.ref``).
def _ref_valued(expr: ast.AST) -> bool:
    """Whether *expr* IS a reference (not merely mentions one).

    A bare name or attribute whose leaf mentions ``ref`` is a Ref; a
    call wrapping it (``pid_of(ref)``, ``slot_of[ref]``) or an attribute
    projecting an int field (``ref.pid``) already did the right thing
    and is not flagged.
    """
    if isinstance(expr, ast.Name):
        return "ref" in expr.id.lower()
    if isinstance(expr, ast.Attribute):
        return "ref" in expr.attr.lower()
    if isinstance(expr, ast.Tuple):
        return any(_ref_valued(elt) for elt in expr.elts)
    return False


#: iteration sources that yield one item per pending/delivered message.
_MESSAGE_SOURCE_RE = re.compile(r"(channel|message|msgs|inbox|args)", re.IGNORECASE)


class RefKeyedContainerOnStepPath(Rule):
    id = "PERF004"
    title = "no Ref-keyed containers or per-message allocation on the step path"
    rationale = (
        "The struct-of-arrays core keys every table by int pid/slot; a "
        "dict or set constructed over Ref objects inside the step loop "
        "re-introduces per-message object hashing and allocation, which "
        "is exactly what the tagged-int refactor removed (and what the "
        "verify-mode differential cannot see — it is a pure perf "
        "regression). Key by pid_of(ref)/slot instead. Likewise, "
        "constructing an object per message inside a loop over a "
        "channel or message buffer allocates on every delivery; hoist "
        "the object out or operate on the packed int records."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for fn in project.functions.values():
            if fn.module is not module or not project.is_step_reachable(fn.qualname):
                continue
            yield from self._ref_keyed(module, fn)
            yield from self._per_message_allocs(module, project, fn)

    def _ref_keyed(self, module: Module, fn) -> Iterator[Finding]:
        for node in _own_statements(fn.node):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is not None and _ref_valued(key):
                        yield self.finding(
                            module,
                            node,
                            f"Ref-keyed dict literal in step-path function "
                            f"{fn.name!r}; key by pid_of(ref)/slot",
                        )
                        break
            elif isinstance(node, ast.DictComp):
                if _ref_valued(node.key):
                    yield self.finding(
                        module,
                        node,
                        f"Ref-keyed dict comprehension in step-path "
                        f"function {fn.name!r}; key by pid_of(ref)/slot",
                    )
            elif isinstance(node, ast.Set):
                if any(_ref_valued(elt) for elt in node.elts):
                    yield self.finding(
                        module,
                        node,
                        f"set of Refs constructed in step-path function "
                        f"{fn.name!r}; collect pids/slots instead",
                    )
            elif isinstance(node, ast.SetComp):
                if _ref_valued(node.elt):
                    yield self.finding(
                        module,
                        node,
                        f"set of Refs constructed in step-path function "
                        f"{fn.name!r}; collect pids/slots instead",
                    )
            elif isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if (
                    chain in {"dict", "set", "frozenset"}
                    and node.args
                    and _ref_valued(node.args[0])
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{chain}() built over Refs in step-path function "
                        f"{fn.name!r}; key by pid_of(ref)/slot",
                    )

    def _per_message_allocs(
        self, module: Module, project: Project, fn
    ) -> Iterator[Finding]:
        seen: set[tuple[int, int]] = set()  # nested loops walk bodies twice
        for node in _own_statements(fn.node):
            body: list[ast.stmt] | list[ast.expr]
            if isinstance(node, ast.For):
                source, body = node.iter, node.body
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                source = node.generators[0].iter
                body = (
                    [node.key, node.value]
                    if isinstance(node, ast.DictComp)
                    else [node.elt]
                )
            else:
                continue
            chain = attr_chain(source)
            if chain is None and isinstance(source, ast.Call):
                chain = attr_chain(source.func)
            if chain is None or not _MESSAGE_SOURCE_RE.search(chain):
                continue
            for stmt in body:
                for sub in ast.walk(stmt):
                    if not isinstance(sub, ast.Call):
                        continue
                    cls = project.resolve_class(module, sub)
                    if cls is None:
                        continue
                    if project.is_exception_class(cls) or project.is_enum_like(cls):
                        continue
                    where = (sub.lineno, sub.col_offset)
                    if where in seen:
                        continue
                    seen.add(where)
                    yield self.finding(
                        module,
                        sub,
                        f"{cls.name!r} allocated per message (loop over "
                        f"{chain}) in step-path function {fn.name!r}; "
                        "hoist the object or use the packed records",
                    )
