"""PERF0xx — hot-path hygiene rules.

PR 2 made the step loop allocation-free (pooled ``ActionContext``,
``__slots__`` everywhere on the step path, no per-delivery closures) and
the benchmarks gate on it. These rules keep that invariant from
regressing silently: they walk the name-based call graph from
``Engine.step`` and the protocol action methods (see
``lint/callgraph.py``) and check every function reachable from there.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.lint.callgraph import _own_statements
from repro.lint.model import Finding, Module, Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.callgraph import Project

__all__ = ["SlotsOnStepPath", "ClosureOnStepPath"]


class SlotsOnStepPath(Rule):
    id = "PERF001"
    title = "step-path classes must declare __slots__"
    rationale = (
        "A class instantiated inside Engine.step's call graph without "
        "__slots__ carries a per-instance __dict__: more allocation, "
        "worse cache locality, and it breaks the PR 2 allocation-budget "
        "benchmarks. Declare __slots__ or @dataclass(slots=True)."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        seen: set[str] = set()
        for fn in project.functions.values():
            if fn.module is not module or not project.is_step_reachable(fn.qualname):
                continue
            for node in _own_statements(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                cls = project.resolve_class(module, node)
                if cls is None or cls.qualname in seen or cls.has_slots:
                    continue
                if project.is_exception_class(cls) or project.is_enum_like(cls):
                    continue
                # A base we cannot resolve may bring its own __dict__ (or
                # its own slots); only judge fully-resolvable hierarchies.
                if any(
                    b.split(".")[-1] not in project.classes_by_name
                    and b.split(".")[-1] != "object"
                    for b in cls.base_names
                ):
                    continue
                seen.add(cls.qualname)
                yield self.finding(
                    module,
                    node,
                    f"class {cls.name!r} ({cls.module.path}:"
                    f"{cls.node.lineno}) is instantiated on the step "
                    "path but declares no __slots__",
                )


class ClosureOnStepPath(Rule):
    id = "PERF002"
    title = "no per-call closures on the step path"
    rationale = (
        "A lambda or nested def allocates a function object (plus cells) "
        "every call; in handlers and timeouts that is per-message cost. "
        "PR 2 removed these from the loop — hoist to a bound method or a "
        "table built in __init__."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for fn in project.functions.values():
            if fn.module is not module or not project.is_step_reachable(fn.qualname):
                continue
            if "<locals>" in fn.qualname:
                # The nested def itself was already reported at its
                # definition site inside the parent.
                continue
            for node in _own_statements(fn.node):
                if isinstance(node, ast.Lambda):
                    yield self.finding(
                        module,
                        node,
                        f"lambda allocated per call in step-path function "
                        f"{fn.name!r}",
                    )
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield self.finding(
                        module,
                        node,
                        f"nested function {node.name!r} allocated per call "
                        f"in step-path function {fn.name!r}",
                    )
