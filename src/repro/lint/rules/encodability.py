"""ENC0xx — static encodability proofs for the packed SoA message format.

The SoA core encodes every in-flight message as one int:
``label_id | bel << _BEL_SHIFT | (subj+1) << _SUBJ_SHIFT |
(sender+1) << _SENDER_SHIFT``, with tagged refs ``slot | gen <<
REF_SLOT_BITS``. A protocol is only core-eligible if every message it
can ever send fits that record; today ineligibility surfaces as a
``CoreUnsupported`` fallback at run time (or worse, a population simply
never gets the fast path and nobody notices why).

These rules derive each registered protocol's message alphabet from the
AST and prove — at lint time, with the precise ``CoreUnsupported``
reason in the message — that it is encodable: labels are compile-time
constants drawn from the registry's label table (ENC001/ENC002),
payloads are exactly one ``RefInfo`` (ENC003), beliefs provably fit the
2-bit belief field (ENC004), and the registry module's shift/mask
constants actually partition the word (ENC005).

Scope is deliberately the *exact* classes named by ``MIRROR_PROTOCOLS``
rows plus their base chain — a subclass someone derives is not
core-eligible and may send arbitrary messages; these rules say nothing
about it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.lint.effects import MirrorRegistry, mro_chain
from repro.lint.interp import module_constants
from repro.lint.model import Finding, Module, Rule, attr_chain
from repro.lint.rules.soa_mirror import project_registries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.callgraph import ClassInfo, Project

__all__ = [
    "NonConstantLabel",
    "UnregisteredLabel",
    "PayloadShape",
    "BeliefRange",
    "PackedLayout",
]

#: parameter annotations that mark the action-context argument.
_CTX_ANNOTATIONS = {"ActionContext"}

#: calls whose result is a normalized belief by construction.
_BELIEF_CALLS = {"normalize_belief", "normalized"}

#: attribute tails that store a (normalized) belief in the object model.
_BELIEF_ATTRS = (".mode", ".anchor_belief")


def _scoped_classes(
    project: Project,
) -> dict[str, tuple[ClassInfo, MirrorRegistry]]:
    """qualname → (class, owning registry) for every core-eligible class.

    The MRO chain is included: an inherited ``timeout`` must be
    encodable for every registered population that can run it.
    """
    out: dict[str, tuple[ClassInfo, MirrorRegistry]] = {}
    for registry in project_registries(project):
        for prow in registry.protocols:
            pcls = registry.protocol_class(project, prow)
            if pcls is None:
                continue
            for cls in mro_chain(project, pcls):
                out.setdefault(cls.qualname, (cls, registry))
    return out


def _ctx_param(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    """Name of the action-context parameter, or None for non-actions."""
    for arg in fn.args.args + fn.args.kwonlyargs:
        if arg.arg == "ctx":
            return arg.arg
        ann = arg.annotation
        if ann is not None and ast.unparse(ann) in _CTX_ANNOTATIONS:
            return arg.arg
    return None


def _iter_sends(
    cls: ClassInfo, module: Module
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, ast.Call]]:
    """Yield (method, ctx.send call) pairs for methods defined in *module*."""
    if cls.module is not module:
        return
    for stmt in cls.node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        ctx = _ctx_param(stmt)
        if ctx is None:
            continue
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and attr_chain(node.func) == f"{ctx}.send"
            ):
                yield stmt, node


class NonConstantLabel(Rule):
    id = "ENC001"
    title = "core-eligible protocols must send compile-time-constant labels"
    rationale = (
        "The packed record stores the label as an 8-bit id looked up at "
        "population-build time; a label computed at run time cannot be "
        "assigned an id and forces the CoreUnsupported('message with "
        "non-constant label') fallback for the whole population."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for cls, _registry in _scoped_classes(project).values():
            for fn, call in _iter_sends(cls, module):
                if len(call.args) < 2 or any(
                    isinstance(a, ast.Starred) for a in call.args
                ):
                    continue  # malformed call; ENC003 reports the shape
                label = call.args[1]
                if not (
                    isinstance(label, ast.Constant)
                    and isinstance(label.value, str)
                ):
                    yield self.finding(
                        module,
                        label,
                        f"{cls.name}.{fn.name} sends a non-constant label "
                        f"({ast.unparse(label)}); the packed record needs a "
                        "static label id "
                        "(CoreUnsupported: message with non-constant label)",
                    )


class UnregisteredLabel(Rule):
    id = "ENC002"
    title = "sent labels must appear in the mirror registry's label table"
    rationale = (
        "The core's delivery switch dispatches on registered label ids "
        "only; a constant label missing from MIRROR_ACTIONS is silently "
        "dropped by the fast path while the object engine delivers it — "
        "an un-mirrored broadcast that verify mode only catches if a test "
        "happens to cross it."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for cls, registry in _scoped_classes(project).values():
            known = {row.name for row in registry.deliver_actions}
            for fn, call in _iter_sends(cls, module):
                if len(call.args) < 2:
                    continue
                label = call.args[1]
                if (
                    isinstance(label, ast.Constant)
                    and isinstance(label.value, str)
                    and label.value not in known
                ):
                    yield self.finding(
                        module,
                        label,
                        f"{cls.name}.{fn.name} sends label {label.value!r} "
                        "which has no MIRROR_ACTIONS row "
                        f"({registry.module.path}:{registry.lineno}); the "
                        "SoA core would drop it on delivery",
                    )


class PayloadShape(Rule):
    id = "ENC003"
    title = "core-eligible messages carry exactly one RefInfo payload"
    rationale = (
        "The packed record has one subject field and one belief field; "
        "zero-arg, multi-arg or starred parameter lists cannot round-trip "
        "through it (CoreUnsupported: message with unencodable parameter "
        "list)."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for cls, _registry in _scoped_classes(project).values():
            for fn, call in _iter_sends(cls, module):
                payload = call.args[2:]
                if any(isinstance(a, ast.Starred) for a in call.args):
                    yield self.finding(
                        module,
                        call,
                        f"{cls.name}.{fn.name} sends a starred parameter "
                        "list; the packed record needs exactly one RefInfo "
                        "(CoreUnsupported: message with unencodable "
                        "parameter list)",
                    )
                    continue
                if len(payload) == 1 and not isinstance(
                    payload[0], ast.Constant
                ):
                    continue  # one expression; assume RefInfo-shaped
                yield self.finding(
                    module,
                    call,
                    f"{cls.name}.{fn.name} sends {len(payload)} payload "
                    "argument(s); the packed record encodes exactly one "
                    "RefInfo (CoreUnsupported: message with unencodable "
                    "parameter list)",
                )


class BeliefRange(Rule):
    id = "ENC004"
    title = "piggybacked beliefs must provably fit the 2-bit belief field"
    rationale = (
        "The record reserves _SUBJ_SHIFT - _BEL_SHIFT bits for the "
        "sender's belief; only Mode values (or None) are encodable. A "
        "belief expression that cannot be traced to a Mode-typed source "
        "may smuggle an arbitrary object into the fast path."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for cls, _registry in _scoped_classes(project).values():
            if cls.module is not module:
                continue
            for stmt in cls.node.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if _ctx_param(stmt) is None:
                    continue
                belief_names = self._belief_typed_names(stmt)
                ctx = _ctx_param(stmt)
                for node in ast.walk(stmt):
                    if not (
                        isinstance(node, ast.Call)
                        and attr_chain(node.func) == f"{ctx}.send"
                    ):
                        continue
                    for arg in node.args[2:]:
                        if not (
                            isinstance(arg, ast.Call)
                            and attr_chain(arg.func) in ("RefInfo",)
                            and len(arg.args) >= 2
                        ):
                            continue
                        belief = arg.args[1]
                        if not self._belief_ok(belief, belief_names):
                            yield self.finding(
                                module,
                                belief,
                                f"{cls.name}.{stmt.name} piggybacks belief "
                                f"{ast.unparse(belief)} that is not provably "
                                "a Mode value; the packed record's belief "
                                "field is 2 bits",
                            )

    @staticmethod
    def _belief_typed_names(
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> set[str]:
        """Names provably bound to Mode-or-None values within *fn*."""
        names: set[str] = set()
        for arg in fn.args.args + fn.args.kwonlyargs:
            ann = arg.annotation
            if ann is not None and "Mode" in ast.unparse(ann):
                names.add(arg.arg)
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and BeliefRange._mode_source(
                    node.value
                ):
                    names.add(target.id)
            elif isinstance(node, ast.For):
                # ``for v, bel in <store>.items():`` — stored beliefs were
                # normalized on the way in.
                it = node.iter
                while (
                    isinstance(it, ast.Call)
                    and isinstance(it.func, ast.Name)
                    and it.func.id in ("sorted", "list", "tuple")
                    and it.args
                ):
                    it = it.args[0]
                if (
                    isinstance(it, ast.Call)
                    and isinstance(it.func, ast.Attribute)
                    and it.func.attr == "items"
                    and isinstance(node.target, ast.Tuple)
                    and len(node.target.elts) == 2
                    and isinstance(node.target.elts[1], ast.Name)
                ):
                    names.add(node.target.elts[1].id)
        return names

    @staticmethod
    def _mode_source(value: ast.expr) -> bool:
        chain = attr_chain(value)
        if chain is not None:
            if chain.startswith("Mode."):
                return True
            if chain.endswith(_BELIEF_ATTRS):
                return True
        if isinstance(value, ast.Call):
            fchain = attr_chain(value.func)
            if fchain is not None and fchain.split(".")[-1] in _BELIEF_CALLS:
                return True
        return False

    @staticmethod
    def _belief_ok(belief: ast.expr, names: set[str]) -> bool:
        if isinstance(belief, ast.Constant) and belief.value is None:
            return True
        if isinstance(belief, ast.Name) and belief.id in names:
            return True
        if isinstance(belief, ast.IfExp):
            return BeliefRange._belief_ok(
                belief.body, names
            ) and BeliefRange._belief_ok(belief.orelse, names)
        return BeliefRange._mode_source(belief)


class PackedLayout(Rule):
    id = "ENC005"
    title = "the packed-record shift/mask constants must partition the word"
    rationale = (
        "Every encodability argument bottoms out in the layout constants: "
        "if the label mask overlaps the belief field, or the subject mask "
        "cannot hold a full tagged ref (slot | gen << REF_SLOT_BITS), "
        "records alias and the verify oracle chases phantom divergence. "
        "Proving the partition once, at lint time, anchors ENC001-ENC004."
    )

    #: layout constant names the proof needs, in dependency order.
    _REQUIRED = (
        "_LABEL_MASK",
        "_BEL_SHIFT",
        "_SUBJ_SHIFT",
        "_SUBJ_MASK",
        "_SENDER_SHIFT",
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for registry in project_registries(project):
            if registry.module is not module:
                continue
            env = module_constants(module.tree)
            consts = {name: env.get(name) for name in self._REQUIRED}
            missing = [k for k, v in consts.items() if not isinstance(v, int)]
            if missing:
                yield Finding(
                    rule=self.id,
                    path=module.path,
                    line=registry.lineno,
                    col=0,
                    message=(
                        "cannot prove the packed-record layout: constants "
                        f"{', '.join(missing)} are missing or non-constant"
                    ),
                )
                continue
            label_mask = consts["_LABEL_MASK"]
            bel_shift = consts["_BEL_SHIFT"]
            subj_shift = consts["_SUBJ_SHIFT"]
            subj_mask = consts["_SUBJ_MASK"]
            sender_shift = consts["_SENDER_SHIFT"]
            assert (
                isinstance(label_mask, int)
                and isinstance(bel_shift, int)
                and isinstance(subj_shift, int)
                and isinstance(subj_mask, int)
                and isinstance(sender_shift, int)
            )
            line = _const_lineno(module.tree, "_LABEL_MASK", registry.lineno)
            if label_mask >= (1 << bel_shift):
                yield Finding(
                    rule=self.id,
                    path=module.path,
                    line=line,
                    col=0,
                    message=(
                        f"label field overflows into the belief field: "
                        f"_LABEL_MASK={label_mask:#x} >= 1 << _BEL_SHIFT"
                        f"={1 << bel_shift:#x}"
                    ),
                )
            belief_codes = [
                v
                for name in ("_STAYING", "_LEAVING", "_NONE")
                if isinstance(v := env.get(name), int)
            ]
            if belief_codes and max(belief_codes) >= (
                1 << (subj_shift - bel_shift)
            ):
                yield Finding(
                    rule=self.id,
                    path=module.path,
                    line=_const_lineno(module.tree, "_NONE", registry.lineno),
                    col=0,
                    message=(
                        f"belief code {max(belief_codes)} does not fit the "
                        f"{subj_shift - bel_shift}-bit belief field "
                        "(_BEL_SHIFT.._SUBJ_SHIFT)"
                    ),
                )
            if subj_mask > (1 << (sender_shift - subj_shift)) - 1:
                yield Finding(
                    rule=self.id,
                    path=module.path,
                    line=_const_lineno(module.tree, "_SUBJ_MASK", registry.lineno),
                    col=0,
                    message=(
                        f"subject field overflows into the sender field: "
                        f"_SUBJ_MASK={subj_mask:#x} > "
                        f"(1 << (_SENDER_SHIFT - _SUBJ_SHIFT)) - 1"
                        f"={(1 << (sender_shift - subj_shift)) - 1:#x}"
                    ),
                )
            slot_bits = self._resolve_slot_bits(project)
            if slot_bits is not None and (1 << slot_bits) > subj_mask:
                yield Finding(
                    rule=self.id,
                    path=module.path,
                    line=_const_lineno(module.tree, "_SUBJ_MASK", registry.lineno),
                    col=0,
                    message=(
                        f"tagged-ref slot space (1 << REF_SLOT_BITS="
                        f"{slot_bits}) exceeds the subject mask "
                        f"{subj_mask:#x}; shifted subjects (slot+1) would be "
                        "truncated"
                    ),
                )
            max_label = max(
                (row.label_id for row in registry.deliver_actions),
                default=0,
            )
            if max_label > label_mask:
                yield Finding(
                    rule=self.id,
                    path=module.path,
                    line=registry.lineno,
                    col=0,
                    message=(
                        f"label table overflow: MIRROR_ACTIONS assigns label "
                        f"id {max_label} > _LABEL_MASK={label_mask:#x}"
                    ),
                )

    @staticmethod
    def _resolve_slot_bits(project: Project) -> int | None:
        for mod in project.modules.values():
            value = module_constants(mod.tree).get("REF_SLOT_BITS")
            if isinstance(value, int):
                return value
        return None


def _const_lineno(tree: ast.Module, name: str, default: int) -> int:
    """Line of the top-level assignment binding *name* (tuple unpack ok)."""
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name) and target.id == name:
                return stmt.lineno
            if isinstance(target, ast.Tuple) and any(
                isinstance(e, ast.Name) and e.id == name for e in target.elts
            ):
                return stmt.lineno
    return default
