"""Rule registry for ``repro lint``.

Adding a rule: implement a :class:`repro.lint.model.Rule` subclass in
the matching family module (or a new one), append it to ``ALL_RULES``,
document it in docs/LINT.md, and add a known-good + known-bad fixture
pair under tests/lint/fixtures/.
"""

from __future__ import annotations

from repro.lint.model import Rule
from repro.lint.rules.determinism import (
    IdentityKey,
    SaltedHash,
    UnseededRandom,
    UnsortedRefSetIteration,
    WallClock,
)
from repro.lint.rules.encodability import (
    BeliefRange,
    NonConstantLabel,
    PackedLayout,
    PayloadShape,
    UnregisteredLabel,
)
from repro.lint.rules.grammar import (
    ForeignStateMutation,
    LifecycleOwnership,
    LogicSurface,
)
from repro.lint.rules.hotpath import (
    ClosureOnStepPath,
    RefKeyedContainerOnStepPath,
    SlotsOnStepPath,
    SnapshotInObservationPath,
)
from repro.lint.rules.ref_safety import (
    RefConsumption,
    RefIdentityComparison,
    ReversalEviction,
)
from repro.lint.rules.soa_mirror import (
    CounterFlush,
    GenerationBump,
    MirrorCoverage,
    MirrorDrift,
)

__all__ = ["ALL_RULES"]

ALL_RULES: tuple[type[Rule], ...] = (
    RefConsumption,
    ReversalEviction,
    RefIdentityComparison,
    UnseededRandom,
    WallClock,
    IdentityKey,
    UnsortedRefSetIteration,
    SaltedHash,
    SlotsOnStepPath,
    ClosureOnStepPath,
    SnapshotInObservationPath,
    RefKeyedContainerOnStepPath,
    LogicSurface,
    ForeignStateMutation,
    LifecycleOwnership,
    MirrorCoverage,
    MirrorDrift,
    CounterFlush,
    GenerationBump,
    NonConstantLabel,
    UnregisteredLabel,
    PayloadShape,
    BeliefRange,
    PackedLayout,
)
