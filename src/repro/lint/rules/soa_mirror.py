"""SOA0xx — mirror-drift rules for the struct-of-arrays core.

The SoA core (``repro.sim.soa``) re-implements every protocol action as
an int kernel; ``engine_mode=verify`` catches divergence dynamically but
only on paths a test happens to drive. These rules prove conformance
statically: the per-action effect summaries of both sides (see
``repro.lint.effects``) must be *equal sets*, every registry row must
resolve on both sides, and the bookkeeping obligations the effect
algebra deliberately excludes (stats counters, the generation bump) are
checked structurally.

All four rules are driven by the mirror registry the core module itself
executes (``MIRROR_ACTIONS``/``MIRROR_PROTOCOLS``), so a protocol added
to the registry is automatically under analysis — and a kernel added
without a registry row is itself a finding.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.lint.effects import (
    MirrorRegistry,
    core_summary,
    describe_effect,
    find_registries,
    mro_chain,
    object_summary,
    resolve_method,
)
from repro.lint.model import Finding, Module, Rule, attr_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.callgraph import Project

__all__ = [
    "MirrorCoverage",
    "MirrorDrift",
    "CounterFlush",
    "GenerationBump",
    "project_registries",
]


def project_registries(project: Project) -> list[MirrorRegistry]:
    """find_registries, cached per project (rules run per module)."""
    cached = getattr(project, "_mirror_registries", None)
    if cached is None:
        cached = find_registries(project)
        project._mirror_registries = cached  # type: ignore[attr-defined]
    return cached


def _method_names(cls_node: ast.ClassDef) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    return {
        stmt.name: stmt
        for stmt in cls_node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


class MirrorCoverage(Rule):
    id = "SOA001"
    title = "mirrored action present on both sides of the SoA core"
    rationale = (
        "Every registry row must resolve to an object-model method AND an "
        "int kernel, and every handler-shaped method (`on_*` on a "
        "core-eligible protocol, `*_kernel` on the core) must be a "
        "registry row — a handler present on one side only is silent "
        "protocol drift the verify oracle can miss entirely."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for registry in project_registries(project):
            yield from self._check_registry_side(module, project, registry)
            yield from self._check_object_side(module, project, registry)

    def _check_registry_side(
        self, module: Module, project: Project, registry: MirrorRegistry
    ) -> Iterator[Finding]:
        if registry.module is not module:
            return
        core = registry.core_class(project)
        core_methods = _method_names(core.node) if core is not None else {}
        for row in registry.actions:
            if core is not None and row.kernel not in core_methods:
                yield Finding(
                    rule=self.id,
                    path=module.path,
                    line=row.lineno,
                    col=0,
                    message=(
                        f"registry action {row.name!r} names kernel "
                        f"{row.kernel!r} but {core.name} does not define it"
                    ),
                )
            for prow in registry.protocols:
                pcls = registry.protocol_class(project, prow)
                if pcls is None:
                    continue
                if resolve_method(mro_chain(project, pcls), row.object_method) is None:
                    yield Finding(
                        rule=self.id,
                        path=module.path,
                        line=row.lineno,
                        col=0,
                        message=(
                            f"registry action {row.name!r} names object "
                            f"method {row.object_method!r} but "
                            f"{prow.process_class} does not define it"
                        ),
                    )
        # kernels present on the core side only
        if core is not None:
            registered = {row.kernel for row in registry.actions}
            for name, fn in core_methods.items():
                if name.endswith("_kernel") and name not in registered:
                    yield Finding(
                        rule=self.id,
                        path=module.path,
                        line=fn.lineno,
                        col=fn.col_offset,
                        message=(
                            f"kernel {name!r} on {core.name} has no "
                            "MIRROR_ACTIONS row — the object model cannot "
                            "reach it and drift analysis cannot cover it"
                        ),
                    )

    def _check_object_side(
        self, module: Module, project: Project, registry: MirrorRegistry
    ) -> Iterator[Finding]:
        """``on_*`` handlers on a core-eligible class must be registered
        (an unregistered one is a label the packed core silently drops)."""
        registered = {row.object_method for row in registry.actions}
        for prow in registry.protocols:
            pcls = registry.protocol_class(project, prow)
            if pcls is None:
                continue
            for cls in mro_chain(project, pcls):
                if cls.module is not module:
                    continue
                for name, fn in _method_names(cls.node).items():
                    if name.startswith("on_") and name not in registered:
                        yield Finding(
                            rule=self.id,
                            path=module.path,
                            line=fn.lineno,
                            col=fn.col_offset,
                            message=(
                                f"handler {cls.name}.{name} has no "
                                "MIRROR_ACTIONS row: the SoA core drops its "
                                f"label for {prow.name} populations "
                                f"(registry: {registry.module.path}:"
                                f"{registry.lineno})"
                            ),
                        )


class MirrorDrift(Rule):
    id = "SOA002"
    title = "object-model and SoA effect summaries must agree"
    rationale = (
        "The dynamic verify oracle only checks executed paths; the effect "
        "diff proves every may-effect (sends with target/subject roles, "
        "store writes/drops, lifecycle requests, oracle consultations) "
        "exists on both sides — a missing flush or an un-mirrored "
        "broadcast breaks the copy-store-send invariant the FDP "
        "correctness argument rests on."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for registry in project_registries(project):
            if registry.module is not module:
                continue
            core = registry.core_class(project)
            if core is None:
                continue  # SOA001 reports the missing class
            for prow in registry.protocols:
                pcls = registry.protocol_class(project, prow)
                if pcls is None:
                    continue
                for row in registry.actions:
                    obj = object_summary(project, pcls, row.object_method)
                    cs = core_summary(project, registry, core, row, prow.is_fsp)
                    if obj is None or cs is None:
                        continue  # SOA001 reports the missing side
                    if obj.bailed or cs.bailed:
                        continue  # extractor abstained; no junk findings
                    obj_effects = set(obj.effects)
                    core_effects = set(cs.effects)
                    for effect in sorted(obj_effects - core_effects):
                        yield Finding(
                            rule=self.id,
                            path=module.path,
                            line=cs.node.lineno,
                            col=cs.node.col_offset,
                            message=(
                                f"kernel {row.kernel!r} ({prow.name}): object "
                                f"model produces {describe_effect(effect)} at "
                                f"{obj.module.path}:{obj.effects[effect]} with "
                                "no core counterpart"
                            ),
                        )
                    for effect in sorted(core_effects - obj_effects):
                        yield Finding(
                            rule=self.id,
                            path=module.path,
                            line=cs.effects[effect],
                            col=0,
                            message=(
                                f"kernel {row.kernel!r} ({prow.name}) produces "
                                f"{describe_effect(effect)} that "
                                f"{pcls.name}.{row.object_method} "
                                f"({obj.module.path}:{obj.node.lineno}) never "
                                "does"
                            ),
                        )


def _writes_attr(fn: ast.AST, attr: str) -> bool:
    """Does *fn* write ``self.<attr>`` (scalar) or ``self.<attr>[...]``?"""
    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                chain = attr_chain(target)
                if chain == f"self.{attr}":
                    return True
                if isinstance(target, ast.Subscript):
                    if attr_chain(target.value) == f"self.{attr}":
                        return True
    return False


class CounterFlush(Rule):
    id = "SOA003"
    title = "SoA event runners must flush the mirrored stats counters"
    rationale = (
        "`engine_mode=verify` compares Engine stats against the core's "
        "counters after every step; an event runner that forgets a bump, "
        "or a batch loop that hoists a counter into a local and never "
        "writes it back, reports phantom divergence (or hides real "
        "divergence) on exactly the paths the batch optimizations touch."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for registry in project_registries(project):
            if registry.module is not module:
                continue
            core = registry.core_class(project)
            if core is None:
                continue
            methods = _method_names(core.node)
            for runner, counters in registry.event_counters.items():
                fn = methods.get(runner)
                if fn is None:
                    yield Finding(
                        rule=self.id,
                        path=module.path,
                        line=registry.lineno,
                        col=0,
                        message=(
                            f"MIRROR_EVENT_COUNTERS names runner {runner!r} "
                            f"but {core.name} does not define it"
                        ),
                    )
                    continue
                for counter in counters:
                    if not _writes_attr(fn, counter):
                        analogue = self._engine_analogue(project, core, runner)
                        yield Finding(
                            rule=self.id,
                            path=module.path,
                            line=fn.lineno,
                            col=fn.col_offset,
                            message=(
                                f"event runner {runner!r} never bumps counter "
                                f"{counter!r}; engine_mode=verify compares it "
                                f"against the object engine's stats"
                                + (f" ({analogue})" if analogue else "")
                            ),
                        )
            if not registry.batch_flush:
                continue
            for name, fn in methods.items():
                if "_batch" not in name:
                    continue
                if not any(
                    isinstance(node, ast.Try) and node.finalbody
                    for node in ast.walk(fn)
                ):
                    continue
                for counter in registry.batch_flush:
                    if not _writes_attr(fn, counter):
                        yield Finding(
                            rule=self.id,
                            path=module.path,
                            line=fn.lineno,
                            col=fn.col_offset,
                            message=(
                                f"batch loop {name!r} hoists scalar counters "
                                f"but never writes {counter!r} back to self "
                                "(BATCH_FLUSH_COUNTERS obligation)"
                            ),
                        )

    @staticmethod
    def _engine_analogue(project: Project, core: object, runner: str) -> str | None:
        for fn in project.functions_by_name.get(runner, ()):
            if fn.cls is not None and fn.cls != getattr(core, "name", None):
                return f"object side: {fn.module.path}:{fn.node.lineno}"
        return None


class GenerationBump(Rule):
    id = "SOA004"
    title = "the transition kernel must bump the generation on exit"
    rationale = (
        "Tagged refs are `slot | gen << REF_SLOT_BITS`: a slot whose "
        "process goes gone must change generation, or a stale reference "
        "held by another process compares equal to a live one and the "
        "connectivity oracle silently reads the wrong process. The same "
        "aliasing returns through the back door if slot *recycling* "
        "resets the generation column, or reuses a slot without guarding "
        "the packed layout's generation capacity."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for registry in project_registries(project):
            if registry.module is not module:
                continue
            core = registry.core_class(project)
            if core is None:
                continue
            transition = registry.plumbing.get("transition", "_transition")
            gone = registry.plumbing.get("gone_state", "_GONE")
            column = registry.plumbing.get("generation_column", "gen_")
            methods = _method_names(core.node)
            recycle = methods.get(registry.plumbing.get("recycle", "admit"))
            if recycle is not None:
                yield from self._check_recycle(module, recycle, column)
            fn = methods.get(transition)
            if fn is None:
                continue
            gone_branches = [
                node
                for node in ast.walk(fn)
                if isinstance(node, ast.If) and self._tests_gone(node.test, gone)
            ]
            if not gone_branches:
                yield Finding(
                    rule=self.id,
                    path=module.path,
                    line=fn.lineno,
                    col=fn.col_offset,
                    message=(
                        f"transition kernel {transition!r} has no "
                        f"{gone}-state branch; exits cannot bump the "
                        f"{column!r} generation column"
                    ),
                )
                return
            for branch in gone_branches:
                if not any(
                    self._bumps_column(node, column) for node in branch.body
                ):
                    yield Finding(
                        rule=self.id,
                        path=module.path,
                        line=branch.lineno,
                        col=branch.col_offset,
                        message=(
                            f"{gone} branch of {transition!r} does not bump "
                            f"the {column!r} generation column — stale tagged "
                            "refs (slot | gen << REF_SLOT_BITS) would alias "
                            "the exited slot"
                        ),
                    )

    def _check_recycle(
        self, module: Module, fn: ast.FunctionDef | ast.AsyncFunctionDef, column: str
    ) -> Iterator[Finding]:
        """Slot-recycle shape: a method that pops a freed slot must keep
        its exit-bumped generation (never reset it) and must compare the
        generation against the packed-layout capacity before reuse."""
        pops = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
            for node in ast.walk(fn)
        )
        if not pops:
            return
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            for tgt in node.targets:
                if (
                    isinstance(tgt, ast.Subscript)
                    and attr_chain(tgt.value) == f"self.{column}"
                    and isinstance(node.value, ast.Constant)
                ):
                    yield Finding(
                        rule=self.id,
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"slot recycle in {fn.name!r} resets the "
                            f"{column!r} generation column — a stale tagged "
                            "ref (slot | gen << REF_SLOT_BITS) would alias "
                            "the new occupant"
                        ),
                    )
        guarded = any(
            isinstance(node, ast.Compare)
            and any(
                isinstance(side, ast.Subscript)
                and attr_chain(side.value) == f"self.{column}"
                for side in [node.left, *node.comparators]
            )
            for node in ast.walk(fn)
        )
        if not guarded:
            yield Finding(
                rule=self.id,
                path=module.path,
                line=fn.lineno,
                col=fn.col_offset,
                message=(
                    f"slot recycle in {fn.name!r} never compares the "
                    f"{column!r} generation against the packed-layout "
                    "capacity (REF_GEN_BITS); an exhausted slot would "
                    "silently wrap instead of being retired"
                ),
            )

    @staticmethod
    def _tests_gone(test: ast.expr, gone: str) -> bool:
        return isinstance(test, ast.Compare) and any(
            attr_chain(side) == gone
            for side in [test.left, *test.comparators]
        )

    @staticmethod
    def _bumps_column(stmt: ast.stmt, column: str) -> bool:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Subscript
            ):
                if attr_chain(node.target.value) == f"self.{column}":
                    return True
        return False
