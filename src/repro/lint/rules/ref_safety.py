"""REF0xx — reference-safety / connectivity rules.

The paper's connectivity argument (Theorem 1 / Lemma 2) rests on the
copy-store-send discipline: a reference a process receives must end up
*somewhere* — forwarded in a message, stored in a neighborhood
container, or explicitly released through the sanctioned purge surface.
A reference that silently falls out of scope is a potential cut edge.

REF001 and REF002 are *flow-sensitive*: REF001 tracks each reference
parameter through the handler's control-flow paths with the provenance
lattice in :mod:`repro.lint.interp` (received → copied → stored / sent /
dropped), so a ref consumed on one branch of a conditional but leaked on
the other is caught — the syntactic predecessor rule only asked whether
*some* statement anywhere mentioned the name. REF002 requires the
eviction to be reachable on the same guarded path as the reversal send
(inside the mode-guard's subtree, or established before the guard), not
merely somewhere in the function.

These rules run only on protocol modules (modules defining a
``Process``/``OverlayLogic`` subclass) — utility code passes refs around
freely.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.lint.interp import RefFlow
from repro.lint.model import Finding, Module, Rule, attr_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.callgraph import Project

__all__ = ["RefConsumption", "ReversalEviction", "RefIdentityComparison"]

#: methods that receive references from the network / the framework.
_HANDLER_RE = re.compile(r"^(on_|handle|_handle|integrate)")

#: annotations naming reference-carrying parameters.
_REF_ANNOTATIONS = frozenset({"Ref", "RefInfo"})

#: container methods that release a stored reference.
_EVICT_METHODS = frozenset({"drop_neighbor", "pop", "discard", "remove"})


def _protocol_methods(
    module: Module, project: Project
) -> Iterator[tuple[ast.ClassDef, ast.FunctionDef | ast.AsyncFunctionDef]]:
    for cls in project.classes.values():
        if cls.module is not module or not project.is_protocol_class(cls):
            continue
        for stmt in cls.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield cls.node, stmt


class RefConsumption(Rule):
    id = "REF001"
    title = "received reference must be consumed on every path"
    rationale = (
        "Copy-store-send (paper Section 2): a handler that receives a Ref "
        "and lets it fall out of scope may disconnect the overlay — the "
        "reference was an edge of the relation graph. Dataflow tracks the "
        "ref and its aliases per control-flow path, so a branch that "
        "returns early without consuming it is a finding even when the "
        "other branch stores the ref; explicit early returns and raises "
        "under a guard that inspected the ref are the sanctioned "
        "rejection surface."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        if not project.is_protocol(module):
            return
        for _cls, fn in _protocol_methods(module, project):
            if not _HANDLER_RE.match(fn.name):
                continue
            ref_params = [
                arg
                for arg in [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]
                if arg.annotation is not None
                and (attr_chain(arg.annotation) or "").split(".")[-1]
                in _REF_ANNOTATIONS
            ]
            for arg in ref_params:
                flow = RefFlow(fn, arg.arg)
                ends = flow.run()
                if flow.bailed:
                    continue  # path explosion / unmodelled construct
                leaks = [
                    end
                    for end in ends
                    if end.kind != "raise"
                    and not end.consumed
                    and not end.sanctioned
                ]
                if not leaks:
                    continue
                where = leaks[0].node
                yield self.finding(
                    module,
                    arg,
                    f"handler {fn.name!r} receives reference parameter "
                    f"{arg.arg!r} but a path ending at line "
                    f"{getattr(where, 'lineno', fn.lineno)} neither sends, "
                    "stores, nor drops it (potential connectivity leak)",
                )


def _walk_sends(
    node: ast.AST,
    guards: tuple[ast.If, ...],
    out: list[tuple[ast.Call, tuple[ast.If, ...]]],
) -> None:
    """Collect ``*.send(target, 'present', ...)`` calls with their
    enclosing If nodes (innermost last)."""
    if isinstance(node, ast.If):
        inner = (*guards, node)
        for child in [*node.body, *node.orelse]:
            _walk_sends(child, inner, out)
        return
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
        return
    if isinstance(node, ast.Call):
        chain = attr_chain(node.func) or ""
        if (
            chain.split(".")[-1] == "send"
            and len(node.args) >= 2
            and isinstance(node.args[1], ast.Constant)
            and node.args[1].value == "present"
        ):
            out.append((node, guards))
    for child in ast.iter_child_nodes(node):
        _walk_sends(child, guards, out)


def _has_eviction(scope: ast.AST, target_src: str, before: int | None = None) -> bool:
    """Is there an eviction of *target_src* in *scope* (optionally only
    at lines strictly before *before*)?"""
    for node in ast.walk(scope):
        if before is not None and getattr(node, "lineno", before) >= before:
            continue
        if isinstance(node, ast.Call):
            chain = attr_chain(node.func) or ""
            if chain.split(".")[-1] in _EVICT_METHODS and any(
                ast.unparse(arg) == target_src for arg in node.args
            ):
                return True
        elif isinstance(node, ast.Delete):
            for tgt in node.targets:
                if (
                    isinstance(tgt, ast.Subscript)
                    and ast.unparse(tgt.slice) == target_src
                ):
                    return True
    return False


class ReversalEviction(Rule):
    id = "REF002"
    title = "reversal `present` to a leaving ref must evict it"
    rationale = (
        "PR 2 livelock: _postprocess presumed an unresponsive ref leaving "
        "and sent the reversal `present` (♣) without evicting it from P, "
        "so every later timeout re-targeted the gone process and spawned "
        "an unanswerable verify cycle. Any mode-conditioned `present` send "
        "must be paired with drop_neighbor/pop/del of the target *on the "
        "guarded path* — an eviction on a sibling branch does not release "
        "the edge the reversal path keeps."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        if not project.is_protocol(module):
            return
        for _cls, fn in _protocol_methods(module, project):
            # Receipt handlers answer `present` symmetrically; the rule
            # targets the *presumption/reversal* paths (timeouts,
            # postprocess) where the sender also holds the ref in P.
            if fn.name.startswith("on_") or "handle" in fn.name:
                continue
            sends: list[tuple[ast.Call, tuple[ast.If, ...]]] = []
            for stmt in fn.body:
                _walk_sends(stmt, (), sends)
            for call, guards in sends:
                tests = [ast.unparse(g.test) for g in guards]
                mode_ifs = [
                    g
                    for g, t in zip(guards, tests)
                    if "Mode.LEAVING" in t or "Mode.STAYING" in t
                ]
                own_mode = any("self.mode" in t for t in tests)
                if not mode_ifs or own_mode:
                    continue
                target_src = ast.unparse(call.args[0])
                # The eviction must share the reversal's guarded path:
                # inside the innermost mode-guard's subtree, or already
                # performed before control reached that guard.
                guard = mode_ifs[-1]
                if _has_eviction(guard, target_src) or _has_eviction(
                    fn, target_src, before=guard.lineno
                ):
                    continue
                yield self.finding(
                    module,
                    call,
                    f"{fn.name!r} sends reversal 'present' to "
                    f"{target_src} under a mode test without evicting it "
                    "on that path (drop_neighbor/pop/del) — PR 2 livelock "
                    "shape",
                )


class RefIdentityComparison(Rule):
    id = "REF003"
    title = "references compared by identity"
    rationale = (
        "Copy-store-send duplicates Ref objects: two distinct objects may "
        "denote the same process, so `is` comparisons silently diverge "
        "from the model's reference equality."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        if not project.is_protocol(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops):
                continue
            # ``ref is None`` / ``ref is not None`` is the optional-field
            # idiom, not an identity comparison between two references.
            if any(
                isinstance(side, ast.Constant)
                for side in [node.left, *node.comparators]
            ):
                continue
            for side in [node.left, *node.comparators]:
                chain = attr_chain(side)
                if chain is None:
                    continue
                if chain.split(".")[-1].lower().endswith("ref"):
                    yield self.finding(
                        module,
                        node,
                        f"identity comparison of reference {chain!r} "
                        "(use ==; refs are copied, not shared)",
                    )
                    break
