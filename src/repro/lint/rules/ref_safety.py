"""REF0xx — reference-safety / connectivity rules.

The paper's connectivity argument (Theorem 1 / Lemma 2) rests on the
copy-store-send discipline: a reference a process receives must end up
*somewhere* — forwarded in a message, stored in a neighborhood
container, or explicitly released through the sanctioned purge surface.
A reference that silently falls out of scope is a potential cut edge.

These rules run only on protocol modules (modules defining a
``Process``/``OverlayLogic`` subclass) — utility code passes refs around
freely.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.lint.model import Finding, Module, Rule, attr_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.callgraph import Project

__all__ = ["RefConsumption", "ReversalEviction", "RefIdentityComparison"]

#: methods that receive references from the network / the framework.
_HANDLER_RE = re.compile(r"^(on_|handle|_handle|integrate)")

#: annotations naming reference-carrying parameters.
_REF_ANNOTATIONS = frozenset({"Ref", "RefInfo"})

#: container methods that release a stored reference.
_EVICT_METHODS = frozenset({"drop_neighbor", "pop", "discard", "remove"})


def _names_in(expr: ast.AST | None) -> Iterator[str]:
    if expr is None:
        return
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            yield node.id


def _consumed_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names that flow into a sink: call argument, store, return/yield,
    subscript key of a store, or an explicit ``del``."""
    out: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            for arg in node.args:
                out.update(_names_in(arg))
            for kw in node.keywords:
                out.update(_names_in(kw.value))
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            out.update(_names_in(node.value))
        elif isinstance(node, ast.Assign):
            out.update(_names_in(node.value))
            for tgt in node.targets:
                for sub in ast.walk(tgt):
                    if isinstance(sub, ast.Subscript):
                        out.update(_names_in(sub.slice))
        elif isinstance(node, ast.AugAssign):
            out.update(_names_in(node.value))
            if isinstance(node.target, ast.Subscript):
                out.update(_names_in(node.target.slice))
        elif isinstance(node, ast.AnnAssign):
            out.update(_names_in(node.value))
        elif isinstance(node, ast.Delete):
            for tgt in node.targets:
                out.update(_names_in(tgt))
    return out


def _protocol_methods(
    module: Module, project: Project
) -> Iterator[tuple[ast.ClassDef, ast.FunctionDef | ast.AsyncFunctionDef]]:
    for cls in project.classes.values():
        if cls.module is not module or not project.is_protocol_class(cls):
            continue
        for stmt in cls.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield cls.node, stmt


class RefConsumption(Rule):
    id = "REF001"
    title = "received reference must be consumed"
    rationale = (
        "Copy-store-send (paper Section 2): a handler that receives a Ref "
        "and lets it fall out of scope may disconnect the overlay — the "
        "reference was an edge of the relation graph."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        if not project.is_protocol(module):
            return
        for _cls, fn in _protocol_methods(module, project):
            if not _HANDLER_RE.match(fn.name):
                continue
            if any(isinstance(n, ast.Raise) for n in ast.walk(fn)):
                continue  # abstract / intentionally unsupported
            ref_params = [
                arg
                for arg in [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]
                if arg.annotation is not None
                and (attr_chain(arg.annotation) or "").split(".")[-1]
                in _REF_ANNOTATIONS
            ]
            if not ref_params:
                continue
            consumed = _consumed_names(fn)
            for arg in ref_params:
                if arg.arg not in consumed:
                    yield self.finding(
                        module,
                        arg,
                        f"handler {fn.name!r} receives reference parameter "
                        f"{arg.arg!r} but never sends, stores, or drops it "
                        "(potential connectivity leak)",
                    )


def _walk_sends(
    node: ast.AST, tests: tuple[str, ...], out: list[tuple[ast.Call, tuple[str, ...]]]
) -> None:
    if isinstance(node, ast.If):
        guard = (*tests, ast.unparse(node.test))
        for child in [*node.body, *node.orelse]:
            _walk_sends(child, guard, out)
        return
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
        return
    if isinstance(node, ast.Call):
        chain = attr_chain(node.func) or ""
        if (
            chain.split(".")[-1] == "send"
            and len(node.args) >= 2
            and isinstance(node.args[1], ast.Constant)
            and node.args[1].value == "present"
        ):
            out.append((node, tests))
    for child in ast.iter_child_nodes(node):
        _walk_sends(child, tests, out)


def _has_eviction(fn: ast.AST, target_src: str) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            chain = attr_chain(node.func) or ""
            if chain.split(".")[-1] in _EVICT_METHODS and any(
                ast.unparse(arg) == target_src for arg in node.args
            ):
                return True
        elif isinstance(node, ast.Delete):
            for tgt in node.targets:
                if (
                    isinstance(tgt, ast.Subscript)
                    and ast.unparse(tgt.slice) == target_src
                ):
                    return True
    return False


class ReversalEviction(Rule):
    id = "REF002"
    title = "reversal `present` to a leaving ref must evict it"
    rationale = (
        "PR 2 livelock: _postprocess presumed an unresponsive ref leaving "
        "and sent the reversal `present` (♣) without evicting it from P, "
        "so every later timeout re-targeted the gone process and spawned "
        "an unanswerable verify cycle. Any mode-conditioned `present` send "
        "must be paired with drop_neighbor/pop/del of the target."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        if not project.is_protocol(module):
            return
        for _cls, fn in _protocol_methods(module, project):
            # Receipt handlers answer `present` symmetrically; the rule
            # targets the *presumption/reversal* paths (timeouts,
            # postprocess) where the sender also holds the ref in P.
            if fn.name.startswith("on_") or "handle" in fn.name:
                continue
            sends: list[tuple[ast.Call, tuple[str, ...]]] = []
            for stmt in fn.body:
                _walk_sends(stmt, (), sends)
            for call, tests in sends:
                mode_guarded = any(
                    "Mode.LEAVING" in t or "Mode.STAYING" in t for t in tests
                )
                own_mode = any("self.mode" in t for t in tests)
                if not mode_guarded or own_mode:
                    continue
                target_src = ast.unparse(call.args[0])
                if not _has_eviction(fn, target_src):
                    yield self.finding(
                        module,
                        call,
                        f"{fn.name!r} sends reversal 'present' to "
                        f"{target_src} under a mode test without evicting it "
                        "(drop_neighbor/pop/del) — PR 2 livelock shape",
                    )


class RefIdentityComparison(Rule):
    id = "REF003"
    title = "references compared by identity"
    rationale = (
        "Copy-store-send duplicates Ref objects: two distinct objects may "
        "denote the same process, so `is` comparisons silently diverge "
        "from the model's reference equality."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        if not project.is_protocol(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops):
                continue
            # ``ref is None`` / ``ref is not None`` is the optional-field
            # idiom, not an identity comparison between two references.
            if any(
                isinstance(side, ast.Constant)
                for side in [node.left, *node.comparators]
            ):
                continue
            for side in [node.left, *node.comparators]:
                chain = attr_chain(side)
                if chain is None:
                    continue
                if chain.split(".")[-1].lower().endswith("ref"):
                    yield self.finding(
                        module,
                        node,
                        f"identity comparison of reference {chain!r} "
                        "(use ==; refs are copied, not shared)",
                    )
                    break
