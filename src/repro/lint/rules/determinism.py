"""DET0xx — determinism rules for the engine hot path.

A run is an experiment: given (scenario, seed) it must replay bit-for-bit
on any interpreter, or divergence debugging (exactly what diagnosed the
PR 2 livelock) becomes impossible. These rules flag the ways real
nondeterminism crept in or nearly crept in:

* global ``random`` state and wall clocks feeding scheduling decisions;
* ``id()``-derived values (memory addresses differ per run);
* iterating a set of refs in hash order (the cross-interpreter
  divergence class fixed in PR 2 by making ``Ref.__hash__`` seed-free);
* ``__hash__`` implementations feeding ``str``/``bytes`` into ``hash``
  (salted per-process by PYTHONHASHSEED — the exact shipped bug shape).

All but DET005 are scoped to the hot modules (the import closure of the
engine plus protocol modules); analysis/offline tooling may use clocks
freely.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.lint.model import Finding, Module, Rule, attr_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.callgraph import Project

__all__ = [
    "UnseededRandom",
    "WallClock",
    "IdentityKey",
    "UnsortedRefSetIteration",
    "SaltedHash",
]

#: module-level ``random`` functions sharing the global unseeded state.
_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "getrandbits",
        "gauss",
        "SystemRandom",
    }
)

#: wall-clock reads (dotted form and their from-import targets).
_CLOCK_CHAINS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "date.today",
    }
)

_SET_BINOPS = (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)
_SET_METHODS = frozenset(
    {"copy", "difference", "union", "intersection", "symmetric_difference"}
)


def _function_stack_walk(
    tree: ast.AST,
) -> Iterator[tuple[ast.AST, tuple[str, ...]]]:
    """Walk yielding (node, enclosing-function-name stack)."""

    def rec(node: ast.AST, stack: tuple[str, ...]) -> Iterator[tuple[ast.AST, tuple[str, ...]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, stack
                yield from rec(child, (*stack, child.name))
            else:
                yield child, stack
                yield from rec(child, stack)

    yield from rec(tree, ())


class UnseededRandom(Rule):
    id = "DET001"
    title = "unseeded global random in hot path"
    rationale = (
        "Module-level random.* functions share interpreter-global state; "
        "runs stop replaying from (scenario, seed). Use a seeded "
        "random.Random instance owned by the scheduler."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        if not project.is_hot(module):
            return
        aliases = project.aliases.get(module.name, {})
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            parts = chain.split(".")
            if len(parts) == 2 and aliases.get(parts[0]) == "random":
                if parts[1] != "Random":  # Random(seed) is the sanctioned path
                    yield self.finding(
                        module, node, f"call to global {chain}() in hot-path module"
                    )
            elif len(parts) == 1:
                target = aliases.get(parts[0], "")
                if (
                    target.startswith("random.")
                    and target.split(".")[-1] in _RANDOM_FUNCS
                ):
                    yield self.finding(
                        module, node, f"call to global {target}() in hot-path module"
                    )


class WallClock(Rule):
    id = "DET002"
    title = "wall-clock read in hot path"
    rationale = (
        "Simulated time is the step counter; real-time reads make "
        "scheduling decisions unreproducible across machines and runs."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        if not project.is_hot(module):
            return
        aliases = project.aliases.get(module.name, {})
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            head = chain.split(".")[0]
            dotted = chain
            if head in aliases:
                dotted = aliases[head] + chain[len(head) :]
            if chain in _CLOCK_CHAINS or dotted in _CLOCK_CHAINS:
                yield self.finding(
                    module, node, f"wall-clock call {chain}() in hot-path module"
                )


class IdentityKey(Rule):
    id = "DET003"
    title = "id()-derived value in hot path"
    rationale = (
        "id() is a memory address: it differs across runs and "
        "interpreters, so id()-keyed containers iterate and compare "
        "nondeterministically. Key by Ref/pid instead."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        if not project.is_hot(module):
            return
        for node, stack in _function_stack_walk(module.tree):
            if stack and stack[-1] in {"__repr__", "__str__"}:
                continue
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and len(node.args) == 1
            ):
                yield self.finding(
                    module, node, "id()-derived value in hot-path module"
                )


def _refy(expr: ast.AST) -> bool:
    """Whether an expression syntactically mentions references."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and "ref" in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) and "ref" in node.attr.lower():
            return True
    return False


class _SetTyping:
    """Per-module knowledge of which expressions are sets of refs."""

    def __init__(self, module: Module):
        #: attribute names annotated ``set[Ref]``/``frozenset[Ref]``.
        self.set_attrs: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AnnAssign) and node.annotation is not None:
                ann = ast.unparse(node.annotation).replace(" ", "")
                if ann in {"set[Ref]", "frozenset[Ref]", "Set[Ref]", "FrozenSet[Ref]"}:
                    if isinstance(node.target, ast.Attribute):
                        self.set_attrs.add(node.target.attr)
                    elif isinstance(node.target, ast.Name):
                        self.set_attrs.add(node.target.id)

    def locals_of(self, fn: ast.AST) -> set[str]:
        """Local names bound to a ref-set expression anywhere in *fn*."""
        out: set[str] = set()
        for _ in range(2):  # fixpoint over simple chains (a = b; c = a - x)
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    tgt = node.targets[0]
                    if isinstance(tgt, ast.Name) and self.is_ref_set(node.value, out):
                        out.add(tgt.id)
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    ann = ast.unparse(node.annotation).replace(" ", "")
                    if ann in {"set[Ref]", "frozenset[Ref]"}:
                        out.add(node.target.id)
        return out

    def is_ref_set(self, expr: ast.AST, local_sets: set[str]) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in local_sets or (
                expr.id in self.set_attrs
            )
        if isinstance(expr, ast.Attribute):
            return expr.attr in self.set_attrs
        if isinstance(expr, ast.Set):
            return _refy(expr)
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, _SET_BINOPS):
            return self.is_ref_set(expr.left, local_sets) or self.is_ref_set(
                expr.right, local_sets
            )
        if isinstance(expr, ast.Call):
            chain = attr_chain(expr.func) or ""
            leaf = chain.split(".")[-1]
            if leaf in {"set", "frozenset"} and len(chain.split(".")) == 1:
                if expr.args and (
                    _refy(expr.args[0]) or self.is_ref_set(expr.args[0], local_sets)
                ):
                    return True
                return False
            if leaf in {"list", "tuple", "iter"} and len(chain.split(".")) == 1:
                return bool(expr.args) and self.is_ref_set(expr.args[0], local_sets)
            if leaf in _SET_METHODS and isinstance(expr.func, ast.Attribute):
                return self.is_ref_set(expr.func.value, local_sets)
        return False


class UnsortedRefSetIteration(Rule):
    id = "DET004"
    title = "iteration over a set of refs without sorted()"
    rationale = (
        "Set iteration order follows hash order. With a salted hash this "
        "diverges per interpreter (the pre-PR 2 Ref.__hash__ bug class); "
        "even seed-free, protocol decisions taken in set order are fragile "
        "under refactors. Wrap in sorted()/keys.sorted()."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        if not project.is_hot(module):
            return
        typing_info = _SetTyping(module)
        for fn in project.functions.values():
            if fn.module is not module:
                continue
            local_sets = typing_info.locals_of(fn.node)
            iters: list[ast.expr] = []
            for node in ast.walk(fn.node):
                if isinstance(node, ast.For):
                    iters.append(node.iter)
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    iters.extend(gen.iter for gen in node.generators)
            for expr in iters:
                if typing_info.is_ref_set(expr, local_sets):
                    yield self.finding(
                        module,
                        expr,
                        f"iterating ref set {ast.unparse(expr)!r} in hash "
                        "order; wrap in sorted()/keys.sorted()",
                    )


class SaltedHash(Rule):
    id = "DET005"
    title = "__hash__ built from str/bytes constants"
    rationale = (
        "str/bytes hashing is salted by PYTHONHASHSEED, so such a "
        "__hash__ differs per interpreter process — the exact shipped "
        "Ref.__hash__ bug (fixed by hashing ints only: "
        "hash((0x5EED, pid)))."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for node, stack in _function_stack_walk(module.tree):
            if not stack or stack[-1] != "__hash__":
                continue
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                for arg in node.args:
                    if any(
                        isinstance(sub, ast.Constant)
                        and isinstance(sub.value, (str, bytes))
                        for sub in ast.walk(arg)
                    ):
                        yield self.finding(
                            module,
                            node,
                            "__hash__ feeds a str/bytes constant into hash() "
                            "(PYTHONHASHSEED-salted); hash ints only",
                        )
                        break
