"""API0xx — framework-grammar rules.

The paper's universality result only covers protocols in class 𝒫 —
protocols whose inter-process interactions decompose into the four
connectivity-preserving primitives. The simulator mirrors that
restriction as an API surface: overlay logic is driven *only* through
``integrate``/``drop_neighbor``/``handle``/``p_timeout``/``join`` (plus
read-only introspection), all interaction goes through ``send``, and
process lifecycle state is owned by the engine. ``join`` is the
open-system admission hook: a newcomer's first contact is itself an
introduction expressible in the primitives, so it rides the sanctioned
surface rather than a back door. These rules make the surface a
checked contract instead of a convention.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.lint.model import Finding, Module, Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.callgraph import Project

__all__ = ["LogicSurface", "ForeignStateMutation", "LifecycleOwnership"]

#: the OverlayLogic surface the framework/engine may touch.
_SANCTIONED_LOGIC_ATTRS = frozenset(
    {
        "integrate",
        "integrate_with_keys",
        "drop_neighbor",
        "join",
        "handle",
        "p_timeout",
        "neighbor_refs",
        "message_labels",
        "requires_order",
        "postprocess_extra",
        "describe_vars",
        "target_reached",
        "self_ref",
    }
)

#: container mutators that change state in place.
_MUTATORS = frozenset(
    {"add", "discard", "remove", "append", "extend", "insert", "pop", "clear", "update"}
)

#: modules that own process lifecycle state.
_LIFECYCLE_OWNERS = frozenset(
    {"repro.sim.process", "repro.sim.engine", "repro.sim.states"}
)

_LIFECYCLE_ATTRS = frozenset({"mode", "_state", "state"})


class LogicSurface(Rule):
    id = "API001"
    title = "only the sanctioned OverlayLogic surface may be used"
    rationale = (
        "Class 𝒫 (paper Section 2) restricts protocols to the four "
        "primitives; the simulator's equivalent is the OverlayLogic "
        "surface. Host code reaching into logic internals bypasses the "
        "grammar the universality framework depends on."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if (
                isinstance(node.value, ast.Attribute)
                and node.value.attr == "logic"
                and node.attr not in _SANCTIONED_LOGIC_ATTRS
                and not node.attr.startswith("__")
            ):
                yield self.finding(
                    module,
                    node,
                    f"access to unsanctioned logic attribute "
                    f"'.logic.{node.attr}' (surface: integrate/"
                    "drop_neighbor/handle/p_timeout/join + introspection)",
                )


class ForeignStateMutation(Rule):
    id = "API002"
    title = "overlay logic must not mutate received objects"
    rationale = (
        "In the model all interaction is message passing: a logic method "
        "mutating an object it received (another process's state, a "
        "shared container) is a shared-memory shortcut no primitive "
        "decomposition can express."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for cls in project.classes.values():
            if cls.module is not module or not project.is_overlay_logic_class(cls):
                continue
            for stmt in cls.node.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                params = {
                    a.arg
                    for a in [
                        *stmt.args.posonlyargs,
                        *stmt.args.args,
                        *stmt.args.kwonlyargs,
                    ]
                } - {"self"}
                for node in ast.walk(stmt):
                    if isinstance(node, (ast.Assign, ast.AugAssign)):
                        targets = (
                            node.targets
                            if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                        for tgt in targets:
                            root = tgt
                            while isinstance(root, (ast.Attribute, ast.Subscript)):
                                root = root.value
                            if (
                                isinstance(root, ast.Name)
                                and root.id in params
                                and root is not tgt
                            ):
                                yield self.finding(
                                    module,
                                    tgt,
                                    f"logic method {stmt.name!r} mutates "
                                    f"received object {root.id!r} "
                                    "(interaction must go through send)",
                                )
                    elif isinstance(node, ast.Call) and isinstance(
                        node.func, ast.Attribute
                    ):
                        if node.func.attr not in _MUTATORS:
                            continue
                        root = node.func.value
                        while isinstance(root, (ast.Attribute, ast.Subscript)):
                            root = root.value
                        if isinstance(root, ast.Name) and root.id in params:
                            yield self.finding(
                                module,
                                node,
                                f"logic method {stmt.name!r} mutates received "
                                f"object {root.id!r} via .{node.func.attr}() "
                                "(interaction must go through send)",
                            )


class LifecycleOwnership(Rule):
    id = "API003"
    title = "lifecycle state is engine-owned"
    rationale = (
        "Mode/PState transitions carry the paper's legality constraints "
        "(e.g. leaving is irreversible); only the engine and the process "
        "shell may assign them, everything else observes."
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        if module.name in _LIFECYCLE_OWNERS:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for tgt in targets:
                if isinstance(tgt, ast.Attribute) and tgt.attr in _LIFECYCLE_ATTRS:
                    yield self.finding(
                        module,
                        tgt,
                        f"assignment to lifecycle attribute "
                        f"'{ast.unparse(tgt)}' outside the engine/process "
                        "shell",
                    )
