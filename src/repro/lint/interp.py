"""Abstract-interpretation machinery shared by the flow-sensitive rules.

Three building blocks, each deliberately small:

* :func:`fold` — constant folding over an environment of dotted-chain
  constants (``{"self.is_fsp": False, "_GONE": 2}``). This is what lets
  the effect extractor specialize a kernel the way CPython specializes
  it at runtime: ``if self.is_fsp:`` becomes a taken-or-dead branch, and
  ``return _ASLEEP if self.is_fsp else _GONE`` folds to a single
  lifecycle code per protocol.
* :class:`StmtWalker` — a statement-list walker with constant-branch
  pruning and termination tracking. Unknown branches are walked with
  *copies* of the environment (a may-analysis: facts established inside
  one branch never leak past the join), known branches are pruned, and
  a ``return``/``raise`` on a pruned-taken path kills the statements
  after it. Subclasses hook expressions, bindings and deletions.
* :class:`RefFlow` — the path-sensitive provenance lattice for the
  REF0xx rules. A received reference starts RECEIVED; aliases join its
  group (``v = info.ref``); flowing into a call argument, a store, a
  ``return`` or a ``del`` consumes it; a path may end sanctioned (the
  exit is lexically under a branch that *observed* the reference, i.e.
  a deliberate discard) or leaking (the reference falls out of scope
  unconsumed on that path).

Bit-level helpers (:func:`low_bits`, :func:`shifted_operand`) decode
inlined packed-record posts: in ``(mode << _BEL_SHIFT) | ((u + 1) <<
_SUBJ_SHIFT) | ...`` every term shifted past bit 7 vanishes from the
label byte, so the label of a hand-inlined bulk post is provable even
though no ``_send`` call appears.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.lint.model import attr_chain

__all__ = [
    "fold",
    "low_bits",
    "shifted_operand",
    "module_constants",
    "StmtWalker",
    "RefFlow",
    "PathEnd",
]

#: sentinel distinguishing "folds to None" from "does not fold".
_UNKNOWN = object()


def _fold(expr: ast.expr, env: dict[str, Any]) -> Any:
    if isinstance(expr, ast.Constant):
        return expr.value
    chain = attr_chain(expr)
    if chain is not None:
        if chain in env:
            return env[chain]
        return _UNKNOWN
    if isinstance(expr, ast.UnaryOp):
        val = _fold(expr.operand, env)
        if val is _UNKNOWN:
            return _UNKNOWN
        if isinstance(expr.op, ast.Not):
            return not val
        if isinstance(expr.op, ast.USub) and isinstance(val, (int, float)):
            return -val
        return _UNKNOWN
    if isinstance(expr, ast.BoolOp):
        # Partial evaluation: one definitely-false conjunct kills an
        # ``and`` even when its siblings are unknown (and dually for
        # ``or``) — exactly the short-circuit the kernels rely on in
        # ``if fsp and v != u:``.
        is_and = isinstance(expr.op, ast.And)
        unknown = False
        last = _UNKNOWN
        for operand in expr.values:
            val = _fold(operand, env)
            if val is _UNKNOWN:
                unknown = True
                continue
            if is_and and not val:
                return val
            if not is_and and val:
                return val
            last = val
        return _UNKNOWN if unknown else last
    if isinstance(expr, ast.Compare) and len(expr.ops) == 1:
        left = _fold(expr.left, env)
        right = _fold(expr.comparators[0], env)
        if left is _UNKNOWN or right is _UNKNOWN:
            return _UNKNOWN
        op = expr.ops[0]
        try:
            if isinstance(op, ast.Eq):
                return left == right
            if isinstance(op, ast.NotEq):
                return left != right
            if isinstance(op, ast.Is):
                return left is right
            if isinstance(op, ast.IsNot):
                return left is not right
            if isinstance(op, ast.Lt):
                return left < right
            if isinstance(op, ast.LtE):
                return left <= right
            if isinstance(op, ast.Gt):
                return left > right
            if isinstance(op, ast.GtE):
                return left >= right
        except TypeError:
            return _UNKNOWN
        return _UNKNOWN
    if isinstance(expr, ast.IfExp):
        test = _fold(expr.test, env)
        if test is _UNKNOWN:
            return _UNKNOWN
        return _fold(expr.body if test else expr.orelse, env)
    if isinstance(expr, ast.BinOp):
        left = _fold(expr.left, env)
        right = _fold(expr.right, env)
        if left is _UNKNOWN or right is _UNKNOWN:
            return _UNKNOWN
        if not isinstance(left, int) or not isinstance(right, int):
            return _UNKNOWN
        op = expr.op
        try:
            if isinstance(op, ast.BitOr):
                return left | right
            if isinstance(op, ast.BitAnd):
                return left & right
            if isinstance(op, ast.BitXor):
                return left ^ right
            if isinstance(op, ast.LShift):
                return left << right
            if isinstance(op, ast.RShift):
                return left >> right
            if isinstance(op, ast.Add):
                return left + right
            if isinstance(op, ast.Sub):
                return left - right
            if isinstance(op, ast.Mult):
                return left * right
            if isinstance(op, ast.FloorDiv) and right != 0:
                return left // right
            if isinstance(op, ast.Mod) and right != 0:
                return left % right
        except (ValueError, OverflowError):
            return _UNKNOWN
        return _UNKNOWN
    return _UNKNOWN


def fold(expr: ast.expr, env: dict[str, Any]) -> tuple[bool, Any]:
    """Fold *expr* against *env*; returns ``(known, value)``."""
    val = _fold(expr, env)
    if val is _UNKNOWN:
        return False, None
    return True, val


def pruned_ifexp(expr: ast.expr, env: dict[str, Any]) -> ast.expr:
    """Resolve conditional expressions whose test folds to a constant.

    ``_ASLEEP if self.is_fsp else _GONE`` under ``is_fsp=False`` prunes
    to the ``_GONE`` *node* — callers that classify by constant name
    (lifecycle codes) get the surviving branch, not a folded value.
    """
    while isinstance(expr, ast.IfExp):
        known, val = fold(expr.test, env)
        if not known:
            break
        expr = expr.body if val else expr.orelse
    return expr


def low_bits(expr: ast.expr, env: dict[str, Any], bits: int = 8) -> int | None:
    """Value of *expr* restricted to its low *bits*, or None.

    Unlike :func:`fold` this succeeds on partially-unknown packed-record
    expressions: an or-term left-shifted past the window contributes 0
    no matter what its operand is, which is how the label byte of an
    inlined ``ch[v][seq] = rec`` post stays provable.
    """
    mask = (1 << bits) - 1
    known, val = fold(expr, env)
    if known and isinstance(val, int):
        return val & mask
    if isinstance(expr, ast.BinOp):
        if isinstance(expr.op, ast.BitOr):
            left = low_bits(expr.left, env, bits)
            right = low_bits(expr.right, env, bits)
            if left is None or right is None:
                return None
            return left | right
        if isinstance(expr.op, ast.LShift):
            kshift, shift = fold(expr.right, env)
            if kshift and isinstance(shift, int) and shift >= bits:
                return 0
            return None
        if isinstance(expr.op, ast.BitAnd):
            for side, other in ((expr.left, expr.right), (expr.right, expr.left)):
                kside, vside = fold(side, env)
                if kside and isinstance(vside, int):
                    low = low_bits(other, env, bits)
                    if low is None:
                        return None
                    return low & vside & mask
            return None
    return None


def shifted_operand(
    expr: ast.expr, env: dict[str, Any], shift: int
) -> ast.expr | None:
    """Find the or-term of a packed-record expression shifted left by
    exactly *shift* bits and return its operand (unwrapping ``X + 1``).

    This recovers the *subject* field of an inlined post: for
    ``... | ((u + 1) << _SUBJ_SHIFT) | ...`` with ``shift=_SUBJ_SHIFT``
    the result is the ``u`` node.
    """
    if isinstance(expr, ast.BinOp):
        if isinstance(expr.op, ast.BitOr):
            left = shifted_operand(expr.left, env, shift)
            if left is not None:
                return left
            return shifted_operand(expr.right, env, shift)
        if isinstance(expr.op, ast.LShift):
            known, val = fold(expr.right, env)
            if known and val == shift:
                operand = expr.left
                if (
                    isinstance(operand, ast.BinOp)
                    and isinstance(operand.op, ast.Add)
                    and isinstance(operand.right, ast.Constant)
                    and operand.right.value == 1
                ):
                    return operand.left
                return operand
    return None


def module_constants(tree: ast.Module) -> dict[str, Any]:
    """Top-level ``NAME = <constant>`` bindings, including tuple unpacks
    (``_STAYING, _LEAVING, _NONE = 0, 1, 2``) and expressions that fold
    against earlier bindings (``_SUBJ_MASK = (1 << 22) - 1``)."""
    env: dict[str, Any] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                known, val = fold(stmt.value, env)
                if known:
                    env[target.id] = val
            elif isinstance(target, ast.Tuple) and isinstance(stmt.value, ast.Tuple):
                if len(target.elts) == len(stmt.value.elts) and all(
                    isinstance(t, ast.Name) for t in target.elts
                ):
                    for t, v in zip(target.elts, stmt.value.elts):
                        known, val = fold(v, env)
                        if known:
                            env[t.id] = val  # type: ignore[attr-defined]
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                known, val = fold(stmt.value, env)
                if known:
                    env[stmt.target.id] = val
    return env


class StmtWalker:
    """Statement walker with constant-branch pruning.

    ``walk`` returns True when every path through the statement list
    terminates (return/raise/break/continue), which is what makes dead
    code after a pruned-taken early return actually dead. Unknown
    branches are explored with environment *copies* so facts cannot leak
    past the join — the walker computes may-information.

    Subclass hooks:

    * :meth:`visit_expr` — every evaluated expression that is reached:
      statement expressions, assignment values, unknown branch tests,
      loop iterables. Effect extraction lives here.
    * :meth:`bind` — Assign/AnnAssign/AugAssign, after the value visit;
      the default propagates chain constants (``fsp = self.is_fsp``)
      and kills rebound names.
    * :meth:`bind_loop` — loop-target setup before the body walk.
    * :meth:`on_delete`, :meth:`on_return` — explicit release points.
    """

    def visit_expr(self, expr: ast.expr, env: dict[str, Any]) -> None:  # noqa: B027
        pass

    def on_delete(self, stmt: ast.Delete, env: dict[str, Any]) -> None:  # noqa: B027
        pass

    def on_return(self, stmt: ast.Return, env: dict[str, Any]) -> None:  # noqa: B027
        pass

    def bind(
        self,
        stmt: ast.Assign | ast.AnnAssign | ast.AugAssign,
        env: dict[str, Any],
    ) -> None:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        else:
            targets = [stmt.target]
        value = stmt.value
        for target in targets:
            if isinstance(target, ast.Name):
                if isinstance(stmt, ast.AugAssign) or value is None:
                    env.pop(target.id, None)
                    continue
                known, val = fold(value, env)
                if known:
                    env[target.id] = val
                else:
                    env.pop(target.id, None)
            elif isinstance(target, ast.Tuple):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        env.pop(elt.id, None)

    def bind_loop(self, stmt: ast.For | ast.AsyncFor, env: dict[str, Any]) -> None:
        for node in ast.walk(stmt.target):
            if isinstance(node, ast.Name):
                env.pop(node.id, None)

    def walk(self, stmts: list[ast.stmt], env: dict[str, Any]) -> bool:
        for stmt in stmts:
            if isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    self.visit_expr(stmt.value, env)
                self.on_return(stmt, env)
                return True
            if isinstance(stmt, ast.Raise):
                if stmt.exc is not None:
                    self.visit_expr(stmt.exc, env)
                return True
            if isinstance(stmt, (ast.Break, ast.Continue)):
                return True
            if isinstance(stmt, ast.If):
                known, val = fold(stmt.test, env)
                if known:
                    if self.walk(stmt.body if val else stmt.orelse, env):
                        return True
                else:
                    self.visit_expr(stmt.test, env)
                    ended_body = self.walk(stmt.body, dict(env))
                    ended_else = self.walk(stmt.orelse, dict(env))
                    if ended_body and ended_else:
                        return True
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self.visit_expr(stmt.iter, env)
                body_env = dict(env)
                self.bind_loop(stmt, body_env)
                self.walk(stmt.body, body_env)
                self.walk(stmt.orelse, dict(env))
                continue
            if isinstance(stmt, ast.While):
                known, val = fold(stmt.test, env)
                if known and not val:
                    self.walk(stmt.orelse, env)
                    continue
                if not known:
                    self.visit_expr(stmt.test, env)
                self.walk(stmt.body, dict(env))
                self.walk(stmt.orelse, dict(env))
                continue
            if isinstance(stmt, ast.Try):
                self.walk(stmt.body, env)
                for handler in stmt.handlers:
                    self.walk(handler.body, dict(env))
                self.walk(stmt.orelse, dict(env))
                if self.walk(stmt.finalbody, env):
                    return True
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self.visit_expr(item.context_expr, env)
                if self.walk(stmt.body, env):
                    return True
                continue
            if isinstance(stmt, ast.Match):
                self.visit_expr(stmt.subject, env)
                for case in stmt.cases:
                    self.walk(case.body, dict(env))
                continue
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                if stmt.value is not None:
                    self.visit_expr(stmt.value, env)
                for node in ast.walk(
                    stmt.targets[0] if isinstance(stmt, ast.Assign) else stmt.target
                ):
                    if isinstance(node, ast.Subscript):
                        self.visit_expr(node.slice, env)
                self.bind(stmt, env)
                continue
            if isinstance(stmt, ast.Expr):
                self.visit_expr(stmt.value, env)
                continue
            if isinstance(stmt, ast.Delete):
                self.on_delete(stmt, env)
                continue
            if isinstance(stmt, ast.Assert):
                self.visit_expr(stmt.test, env)
                continue
            # Pass / Global / Nonlocal / Import / nested defs: no effects
            # the analyses model.
        return False


# --------------------------------------------------------------------------
# reference provenance (REF0xx)


class PathEnd:
    """One terminated execution path of a handler body."""

    __slots__ = ("node", "kind", "consumed", "sanctioned")

    def __init__(
        self, node: ast.AST, kind: str, consumed: bool, sanctioned: bool
    ) -> None:
        self.node = node
        #: "return" | "raise" | "fall" (fell off the end of the body)
        self.kind = kind
        self.consumed = consumed
        self.sanctioned = sanctioned


class _RefState:
    __slots__ = ("aliases", "consumed", "guard", "is_self")

    def __init__(
        self,
        aliases: frozenset[str],
        consumed: bool,
        guard: int,
        is_self: bool = False,
    ) -> None:
        self.aliases = aliases
        self.consumed = consumed
        self.guard = guard
        #: on this path the reference is known equal to the executing
        #: process's own ref (``ref == self.self_ref`` held); dropping a
        #: self-reference never cuts an edge, so such paths end
        #: sanctioned. Path knowledge, not lexical scope: neither side
        #: of the comparison changes, so the fact survives the join.
        self.is_self = is_self

    def copy(self) -> _RefState:
        return _RefState(self.aliases, self.consumed, self.guard, self.is_self)


#: per-function path blow-up bound; past it the analysis abstains.
_MAX_PATHS = 64


class RefFlow:
    """Path-sensitive provenance of one received reference parameter.

    The lattice a reference moves through::

        RECEIVED --alias--> RECEIVED (group grows: ``v = info.ref``)
                 --flow---> CONSUMED (call arg, store, return, del)

    and per *path* the exit is classified: a ``raise`` is always
    sanctioned; a ``return`` taken while control is inside a branch
    whose test *read* the reference is a deliberate observed discard
    (``if v == self.self_ref: return``); falling off the end of the body
    with the reference still RECEIVED is a leak — the edge the reference
    carried silently left the process graph.

    Only ``.ref`` projections propagate provenance: ``info.mode`` reads
    the piggybacked belief, not the reference, so passing it to a helper
    neither consumes nor aliases (the syntactic rule got this wrong and
    treated any mention as consumption).
    """

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef, param: str):
        self.fn = fn
        self.param = param
        self.ends: list[PathEnd] = []
        self.bailed = False

    # -- mention classification ------------------------------------------------

    def _ref_mentions(self, expr: ast.AST, aliases: frozenset[str]) -> bool:
        """Does *expr* mention the reference *as a reference*?

        Bare alias names and ``alias.ref`` projections count; other
        attribute projections (``alias.mode``) do not.
        """
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id in aliases:
                return expr.attr == "ref"
            return self._ref_mentions(expr.value, aliases)
        if isinstance(expr, ast.Name):
            return expr.id in aliases
        return any(
            self._ref_mentions(child, aliases)
            for child in ast.iter_child_nodes(expr)
        )

    def _call_consumes(self, expr: ast.AST, aliases: frozenset[str]) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                for arg in node.args:
                    target = arg.value if isinstance(arg, ast.Starred) else arg
                    if self._ref_mentions(target, aliases):
                        return True
                for kw in node.keywords:
                    if self._ref_mentions(kw.value, aliases):
                        return True
            elif isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
                # a closure capturing the ref keeps it alive
                if self._ref_mentions(node, aliases):
                    return True
        return False

    def _self_compare(self, test: ast.expr, aliases: frozenset[str]) -> str | None:
        """Classify ``ref == <...>.self_ref`` tests: "eq", "ne", or None.

        The branch on which equality holds carries a reference to the
        executing process itself — never a cut edge, so discards there
        are sanctioned (the ``integrate`` idiom: ``if ref !=
        self.self_ref: store(ref)``).
        """
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
            return None
        op = test.ops[0]
        if not isinstance(op, (ast.Eq, ast.NotEq)):
            return None
        for a, b in (
            (test.left, test.comparators[0]),
            (test.comparators[0], test.left),
        ):
            chain = attr_chain(b)
            if (
                chain is not None
                and chain.split(".")[-1] == "self_ref"
                and self._ref_mentions(a, aliases)
            ):
                return "eq" if isinstance(op, ast.Eq) else "ne"
        return None

    def _alias_source(self, value: ast.expr, aliases: frozenset[str]) -> bool:
        """``x = alias`` / ``x = alias.ref`` extends the alias group."""
        if isinstance(value, ast.Name):
            return value.id in aliases
        if isinstance(value, ast.Attribute) and value.attr == "ref":
            return isinstance(value.value, ast.Name) and value.value.id in aliases
        return False

    # -- the walk ---------------------------------------------------------------

    def run(self) -> list[PathEnd]:
        state = _RefState(frozenset({self.param}), False, 0)
        survivors = self._walk(self.fn.body, [state])
        for st in survivors:
            self.ends.append(
                PathEnd(self.fn, "fall", st.consumed, st.consumed or st.is_self)
            )
        return self.ends

    def _walk(self, stmts: list[ast.stmt], states: list[_RefState]) -> list[_RefState]:
        for stmt in stmts:
            if not states or self.bailed:
                return states
            if len(states) > _MAX_PATHS:
                self.bailed = True
                return states
            states = self._step(stmt, states)
        return states

    def _step(self, stmt: ast.stmt, states: list[_RefState]) -> list[_RefState]:
        if isinstance(stmt, ast.Return):
            for st in states:
                consumed = st.consumed or (
                    stmt.value is not None
                    and self._ref_mentions(stmt.value, st.aliases)
                )
                self.ends.append(
                    PathEnd(
                        stmt,
                        "return",
                        consumed,
                        consumed or st.guard > 0 or st.is_self,
                    )
                )
            return []
        if isinstance(stmt, ast.Raise):
            for st in states:
                self.ends.append(PathEnd(stmt, "raise", st.consumed, True))
            return []
        if isinstance(stmt, (ast.Break, ast.Continue)):
            # stays inside the function: neither a leak nor a release
            return []
        if isinstance(stmt, ast.If):
            out: list[_RefState] = []
            for st in states:
                observed = self._ref_mentions(stmt.test, st.aliases)
                consumed = st.consumed or self._call_consumes(stmt.test, st.aliases)
                self_cmp = self._self_compare(stmt.test, st.aliases)
                for branch, eq_holds in (
                    (stmt.body, self_cmp == "eq"),
                    (stmt.orelse, self_cmp == "ne"),
                ):
                    entry = _RefState(
                        st.aliases,
                        consumed,
                        st.guard + 1 if observed else st.guard,
                        st.is_self or eq_holds,
                    )
                    for survivor in self._walk(branch, [entry]):
                        survivor.guard = st.guard
                        out.append(survivor)
            return out
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            out = []
            for st in states:
                consumed = st.consumed or self._ref_mentions(stmt.iter, st.aliases)
                shadowed = {
                    n.id for n in ast.walk(stmt.target) if isinstance(n, ast.Name)
                }
                body_state = _RefState(
                    st.aliases - frozenset(shadowed), consumed, st.guard, st.is_self
                )
                skip = _RefState(st.aliases, consumed, st.guard, st.is_self)
                out.append(skip)
                for survivor in self._walk(stmt.body, [body_state]):
                    survivor.guard = st.guard
                    out.append(survivor)
            return out
        if isinstance(stmt, ast.While):
            out = []
            for st in states:
                observed = self._ref_mentions(stmt.test, st.aliases)
                out.append(st)
                entry = _RefState(
                    st.aliases,
                    st.consumed,
                    st.guard + 1 if observed else st.guard,
                    st.is_self,
                )
                for survivor in self._walk(stmt.body, [entry]):
                    survivor.guard = st.guard
                    out.append(survivor)
            return out
        if isinstance(stmt, ast.Try):
            states = self._walk(stmt.body, states)
            handler_out: list[_RefState] = []
            for handler in stmt.handlers:
                handler_out.extend(
                    self._walk(handler.body, [st.copy() for st in states])
                )
            states = self._walk(stmt.orelse, states)
            states = self._walk(stmt.finalbody, states + handler_out)
            return states
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for st in states:
                for item in stmt.items:
                    if self._ref_mentions(item.context_expr, st.aliases):
                        st.consumed = True
            return self._walk(stmt.body, states)
        if isinstance(stmt, ast.Assign):
            for st in states:
                if self._alias_source(stmt.value, st.aliases):
                    names = {
                        t.id for t in stmt.targets if isinstance(t, ast.Name)
                    }
                    if names:
                        st.aliases = st.aliases | frozenset(names)
                        continue
                if self._stores_ref(stmt, st.aliases):
                    st.consumed = True
                elif self._call_consumes(stmt.value, st.aliases):
                    st.consumed = True
                # rebinding an alias name to something else sheds it
                rebound = {
                    t.id
                    for t in stmt.targets
                    if isinstance(t, ast.Name) and t.id in st.aliases
                }
                if rebound and not self._alias_source(stmt.value, st.aliases):
                    st.aliases = st.aliases - frozenset(rebound)
            return states
        if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            for st in states:
                if stmt.value is not None and (
                    self._stores_ref(stmt, st.aliases)
                    or self._call_consumes(stmt.value, st.aliases)
                ):
                    st.consumed = True
            return states
        if isinstance(stmt, ast.Expr):
            for st in states:
                if self._call_consumes(stmt.value, st.aliases):
                    st.consumed = True
            return states
        if isinstance(stmt, ast.Delete):
            for st in states:
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id in st.aliases:
                        st.consumed = True
                    elif isinstance(target, ast.Subscript) and self._ref_mentions(
                        target.slice, st.aliases
                    ):
                        st.consumed = True
            return states
        if isinstance(stmt, ast.Match):
            out = []
            for st in states:
                observed = self._ref_mentions(stmt.subject, st.aliases)
                entry_guard = st.guard + 1 if observed else st.guard
                for case in stmt.cases:
                    entry = _RefState(st.aliases, st.consumed, entry_guard, st.is_self)
                    for survivor in self._walk(case.body, [entry]):
                        survivor.guard = st.guard
                        out.append(survivor)
                out.append(st)
            return out
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for st in states:
                if self._ref_mentions(stmt, st.aliases):
                    st.consumed = True  # captured by a nested def
            return states
        return states

    def _stores_ref(
        self, stmt: ast.Assign | ast.AugAssign | ast.AnnAssign, aliases: frozenset[str]
    ) -> bool:
        """The reference flows into a store: attribute/subscript target,
        subscript key, or a composite value (tuple, RefInfo wrap)."""
        if stmt.value is not None and self._ref_mentions(stmt.value, aliases):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript, ast.Tuple)):
                    return True
            # plain Name target handled by the alias logic in _step
            return not isinstance(stmt.value, (ast.Name, ast.Attribute))
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Subscript) and self._ref_mentions(
                    node.slice, aliases
                ):
                    return True
        return False
