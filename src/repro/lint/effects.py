"""Effect algebra and extractors for the mirror-drift rules (SOA0xx).

The object model (``repro.core.fdp``/``fsp``) and the struct-of-arrays
core (``repro.sim.soa``) implement the same protocol twice. The SOA0xx
rules prove they *stay* the same by extracting a per-action **effect
summary** from each side and diffing them in a common algebra:

==============================  ============================================
effect                          meaning
==============================  ============================================
``("send", label, tgt, subj)``  a message posted: label name, target role,
                                subject role (roles: self / anchor / peer)
``("store", name, op)``         a protocol store written (op ``write``) or
                                released (op ``drop``)
``("lifecycle", kind)``         the action requested ``exit`` or ``sleep``
``("oracle",)``                 the action consulted the oracle
==============================  ============================================

Summaries are *may*-sets: every effect some path can produce is in the
set, and both sides are specialized the same way (``self.is_fsp`` folds
per protocol row on the core side; the subclass override *is* the
specialization on the object side), so equal behaviour yields equal
sets. Engine bookkeeping (Φ/edge deltas, sequence numbers, driver
notifications, per-slot stats) is deliberately outside the algebra:
those are checked dynamically by ``engine_mode=verify`` and statically
by SOA003/SOA004.

Both extractors are driven by the **mirror registry** — the
``MIRROR_ACTIONS``/``MIRROR_PROTOCOLS`` literals the core module itself
executes (see ``repro/sim/soa.py``), parsed here from the AST so the
lint never imports analyzed code.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Any

from repro.lint.interp import (
    StmtWalker,
    fold,
    low_bits,
    module_constants,
    pruned_ifexp,
    shifted_operand,
)
from repro.lint.model import Module, attr_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.callgraph import ClassInfo, Project

__all__ = [
    "ActionRow",
    "ProtocolRow",
    "MirrorRegistry",
    "find_registries",
    "EffectSummary",
    "object_summary",
    "core_summary",
    "describe_effect",
    "mro_chain",
    "resolve_method",
]

#: default plumbing names when a registry omits MIRROR_PLUMBING.
_DEFAULT_PLUMBING = {
    "send": "_send",
    "transition": "_transition",
    "oracle": "_consult_oracle",
    "generation_column": "gen_",
    "gone_state": "_GONE",
    "recycle": "admit",
}

#: lifecycle-code constant names → effect kinds (core-side returns).
_LIFECYCLE_NAMES = {"_GONE": "exit", "_ASLEEP": "sleep"}

#: object-side ``self.<attr>`` stores → algebra store names.
_OBJ_ATTR_STORES = {
    "anchor": "anchor",
    "anchor_belief": "anchor",
    "anchor_verified": "anchor_verified",
    "anchor_probe_sent": "anchor_probe_sent",
}

#: object-side keyed stores (``self.N[v] = m`` / ``del self.N[v]``).
_OBJ_MAP_STORES = {"N": "N", "parked": "parked"}

#: core-side columns → (store name, drop sentinel kind).
_CORE_COLUMN_STORES = {
    "anchor_": ("anchor", "neg"),
    "abelief_": ("anchor", "none"),
    "averified_": ("anchor_verified", "zero"),
    "aprobe_": ("anchor_probe_sent", "zero"),
}

#: core-side dict-of-dict stores (``self.N[u]`` rows).
_CORE_MAP_STORES = {"N": "N", "parked": "parked"}

#: container methods that release an entry from a keyed store.
_DROP_METHODS = frozenset({"clear", "pop", "popitem", "discard", "remove"})

_MAX_INLINE_DEPTH = 16


# --------------------------------------------------------------------------
# registry parsing


class ActionRow:
    """One parsed ``MirrorAction(...)`` literal."""

    __slots__ = ("name", "kind", "label_id", "object_method", "kernel", "lineno")

    def __init__(
        self,
        name: str,
        kind: str,
        label_id: int,
        object_method: str,
        kernel: str,
        lineno: int,
    ) -> None:
        self.name = name
        self.kind = kind
        self.label_id = label_id
        self.object_method = object_method
        self.kernel = kernel
        self.lineno = lineno


class ProtocolRow:
    """One parsed ``MirrorProtocol(...)`` literal."""

    __slots__ = ("name", "process_class", "is_fsp", "capability", "lineno")

    def __init__(
        self, name: str, process_class: str, is_fsp: bool, capability: str, lineno: int
    ) -> None:
        self.name = name
        self.process_class = process_class
        self.is_fsp = is_fsp
        self.capability = capability
        self.lineno = lineno


class MirrorRegistry:
    """A module's declarative mirror surface, parsed from the AST."""

    __slots__ = (
        "module",
        "actions",
        "protocols",
        "event_counters",
        "batch_flush",
        "plumbing",
        "lineno",
    )

    def __init__(
        self,
        module: Module,
        actions: list[ActionRow],
        protocols: list[ProtocolRow],
        event_counters: dict[str, tuple[str, ...]],
        batch_flush: tuple[str, ...],
        plumbing: dict[str, str],
        lineno: int,
    ) -> None:
        self.module = module
        self.actions = actions
        self.protocols = protocols
        self.event_counters = event_counters
        self.batch_flush = batch_flush
        self.plumbing = dict(_DEFAULT_PLUMBING, **plumbing)
        self.lineno = lineno

    @property
    def deliver_actions(self) -> list[ActionRow]:
        return [a for a in self.actions if a.kind == "deliver"]

    def label_name(self, label_id: int) -> str | None:
        for row in self.actions:
            if row.kind == "deliver" and row.label_id == label_id:
                return row.name
        return None

    def label_id(self, name: str) -> int | None:
        for row in self.actions:
            if row.kind == "deliver" and row.name == name:
                return row.label_id
        return None

    def core_class(self, project: Project) -> ClassInfo | None:
        """The class in the registry module defining the row kernels."""
        if not self.actions:
            return None
        kernel = self.actions[0].kernel
        for cls in project.classes.values():
            if cls.module is not self.module:
                continue
            for stmt in cls.node.body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name == kernel
                ):
                    return cls
        return None

    def protocol_class(self, project: Project, row: ProtocolRow) -> ClassInfo | None:
        """Resolve a protocol row's exact process class (no subclasses)."""
        candidates = project.classes_by_name.get(row.process_class, [])
        if len(candidates) == 1:
            return candidates[0]
        same_module = [c for c in candidates if c.module is self.module]
        if len(same_module) == 1:
            return same_module[0]
        imported = project.imports.get(self.module.name, set())
        from_imports = [c for c in candidates if c.module.name in imported]
        if len(from_imports) == 1:
            return from_imports[0]
        return None


def _parse_action_rows(node: ast.expr) -> list[ActionRow] | None:
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    rows: list[ActionRow] = []
    for elt in node.elts:
        if not isinstance(elt, ast.Call):
            return None
        fields: dict[str, Any] = {"label_id": -1}
        for kw in elt.keywords:
            if kw.arg is None or not isinstance(kw.value, ast.Constant):
                return None
            fields[kw.arg] = kw.value.value
        try:
            rows.append(
                ActionRow(
                    name=fields["name"],
                    kind=fields["kind"],
                    label_id=fields["label_id"],
                    object_method=fields["object_method"],
                    kernel=fields["kernel"],
                    lineno=elt.lineno,
                )
            )
        except KeyError:
            return None
    return rows


def _parse_protocol_rows(node: ast.expr) -> list[ProtocolRow] | None:
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    rows: list[ProtocolRow] = []
    for elt in node.elts:
        if not isinstance(elt, ast.Call):
            return None
        fields = {}
        for kw in elt.keywords:
            if kw.arg is None or not isinstance(kw.value, ast.Constant):
                return None
            fields[kw.arg] = kw.value.value
        try:
            rows.append(
                ProtocolRow(
                    name=fields["name"],
                    process_class=fields["process_class"],
                    is_fsp=fields["is_fsp"],
                    capability=fields["capability"],
                    lineno=elt.lineno,
                )
            )
        except KeyError:
            return None
    return rows


def _literal(node: ast.expr) -> Any:
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return None


def find_registries(project: Project) -> list[MirrorRegistry]:
    """Every module declaring a mirror registry (MIRROR_ACTIONS +
    MIRROR_PROTOCOLS at module level)."""
    out: list[MirrorRegistry] = []
    for module in project.modules.values():
        assigns: dict[str, ast.expr] = {}
        lineno = 0
        for stmt in module.tree.body:
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            if isinstance(target, ast.Name) and value is not None:
                if target.id.startswith(("MIRROR_", "BATCH_FLUSH")):
                    assigns[target.id] = value
                    if target.id == "MIRROR_ACTIONS":
                        lineno = stmt.lineno
        if "MIRROR_ACTIONS" not in assigns or "MIRROR_PROTOCOLS" not in assigns:
            continue
        actions = _parse_action_rows(assigns["MIRROR_ACTIONS"])
        protocols = _parse_protocol_rows(assigns["MIRROR_PROTOCOLS"])
        if actions is None or protocols is None:
            continue
        event_counters = _literal(assigns.get("MIRROR_EVENT_COUNTERS", ast.Dict([], [])))
        batch_flush = _literal(assigns.get("BATCH_FLUSH_COUNTERS", ast.Tuple([], ast.Load())))
        plumbing = _literal(assigns.get("MIRROR_PLUMBING", ast.Dict([], [])))
        out.append(
            MirrorRegistry(
                module=module,
                actions=actions,
                protocols=protocols,
                event_counters=event_counters if isinstance(event_counters, dict) else {},
                batch_flush=tuple(batch_flush) if isinstance(batch_flush, (tuple, list)) else (),
                plumbing=plumbing if isinstance(plumbing, dict) else {},
                lineno=lineno,
            )
        )
    return out


# --------------------------------------------------------------------------
# class-hierarchy helpers (linear single-inheritance chains)


def mro_chain(project: Project, cls: ClassInfo) -> list[ClassInfo]:
    """The name-resolved base chain of *cls*, most-derived first."""
    out = [cls]
    seen = {cls.name}
    cur = cls
    while cur.base_names:
        base = cur.base_names[0].split(".")[-1]
        if base in seen:
            break
        seen.add(base)
        candidates = project.classes_by_name.get(base, [])
        if len(candidates) != 1:
            break
        cur = candidates[0]
        out.append(cur)
    return out


def resolve_method(
    mro: list[ClassInfo], name: str, start: int = 0
) -> tuple[ast.FunctionDef | ast.AsyncFunctionDef, int] | None:
    """First definition of *name* along the chain from index *start*."""
    for idx in range(start, len(mro)):
        for stmt in mro[idx].node.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == name
            ):
                return stmt, idx
    return None


def _is_staticmethod(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return any(
        isinstance(d, ast.Name) and d.id == "staticmethod" for d in fn.decorator_list
    )


# --------------------------------------------------------------------------
# effect summaries


class EffectSummary:
    """May-set of effects of one action on one side of the mirror."""

    __slots__ = ("side", "module", "method", "node", "effects", "bailed")

    def __init__(
        self,
        side: str,
        module: Module,
        method: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        self.side = side  # "object" | "core"
        self.module = module
        self.method = method
        self.node = node
        #: effect tuple → first line it was produced at
        self.effects: dict[tuple, int] = {}
        #: True when the extractor hit something it could not model; the
        #: diff rule abstains rather than reporting junk.
        self.bailed = False

    def add(self, effect: tuple, node: ast.AST) -> None:
        self.effects.setdefault(effect, getattr(node, "lineno", self.node.lineno))

    def where(self) -> str:
        return f"{self.module.path}:{self.node.lineno}"


def describe_effect(effect: tuple) -> str:
    kind = effect[0]
    if kind == "send":
        _, label, target, subject = effect
        return f"send {label!r} to {target} (subject {subject})"
    if kind == "store":
        _, store, op = effect
        verb = "write" if op == "write" else "drop"
        return f"{verb} store {store!r}"
    if kind == "lifecycle":
        return f"lifecycle {effect[1]}"
    if kind == "oracle":
        return "oracle consultation"
    return repr(effect)


# --------------------------------------------------------------------------
# object-side extractor


class _ObjectFrame(StmtWalker):
    """Walks one object-model method body, helper calls inlined."""

    def __init__(
        self,
        extractor: _ObjectExtractor,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        mro_index: int,
        roles: dict[str, str],
        ctx: str | None,
    ) -> None:
        self.x = extractor
        self.fn = fn
        self.mro_index = mro_index
        #: name → role ("self" | "anchor" | "peer" | "info")
        self.roles = roles
        self.ctx = ctx

    # -- roles ------------------------------------------------------------------

    def role_of(self, expr: ast.expr) -> str:
        chain = attr_chain(expr)
        if chain is not None:
            if chain == "self.self_ref" or (
                self.ctx and chain == f"{self.ctx}.self_ref"
            ):
                return "self"
            if chain == "self.anchor":
                return "anchor"
            parts = chain.split(".")
            base_role = self.roles.get(parts[0])
            if base_role == "info" and parts[1:] == ["ref"]:
                return "peer"
            if len(parts) == 1 and base_role in ("self", "anchor", "peer"):
                return base_role
        return "?"

    def _payload_subject(self, call: ast.Call) -> str:
        if len(call.args) < 3:
            return "none"
        payload = call.args[2]
        if isinstance(payload, ast.Starred):
            return "?"
        if isinstance(payload, ast.Call):
            fname = attr_chain(payload.func) or ""
            if fname.split(".")[-1] == "RefInfo" and payload.args:
                return self.role_of(payload.args[0])
            return "?"
        return self.role_of(payload)

    # -- hooks ------------------------------------------------------------------

    def visit_expr(self, expr: ast.expr, env: dict[str, Any]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._visit_call(node, env)

    def _visit_call(self, call: ast.Call, env: dict[str, Any]) -> None:
        x = self.x
        # super().method(...) — resume resolution past the defining class
        if (
            isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Call)
            and isinstance(call.func.value.func, ast.Name)
            and call.func.value.func.id == "super"
        ):
            x.inline(call, call.func.attr, self.mro_index + 1, self, env)
            return
        chain = attr_chain(call.func)
        if chain is None:
            return
        if self.ctx is not None and chain == f"{self.ctx}.send":
            if len(call.args) < 2:
                return
            label_node = call.args[1]
            if isinstance(label_node, ast.Constant) and isinstance(
                label_node.value, str
            ):
                label = label_node.value
            else:
                label = "?"
                x.summary.bailed = True
            target = self.role_of(call.args[0])
            x.summary.add(("send", label, target, self._payload_subject(call)), call)
            return
        if self.ctx is not None and chain == f"{self.ctx}.exit":
            x.summary.add(("lifecycle", "exit"), call)
            return
        if self.ctx is not None and chain == f"{self.ctx}.sleep":
            x.summary.add(("lifecycle", "sleep"), call)
            return
        if self.ctx is not None and chain == f"{self.ctx}.oracle":
            x.summary.add(("oracle",), call)
            return
        parts = chain.split(".")
        if parts[0] == "self" and len(parts) == 3 and parts[1] in _OBJ_MAP_STORES:
            if parts[2] in _DROP_METHODS:
                x.summary.add(("store", _OBJ_MAP_STORES[parts[1]], "drop"), call)
            return
        if parts[0] == "self" and len(parts) == 2:
            x.inline(call, parts[1], 0, self, env)

    def bind(
        self,
        stmt: ast.Assign | ast.AnnAssign | ast.AugAssign,
        env: dict[str, Any],
    ) -> None:
        self._classify_store(stmt, env)
        if isinstance(stmt, ast.Assign) and stmt.value is not None:
            role = self.role_of(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if role != "?":
                        self.roles[target.id] = role
                    else:
                        value_chain = attr_chain(stmt.value)
                        if (
                            value_chain is not None
                            and "." in value_chain
                            and value_chain.split(".")[-1] == "ref"
                            and self.roles.get(value_chain.split(".")[0]) == "info"
                        ):
                            self.roles[target.id] = "peer"
                        else:
                            self.roles.pop(target.id, None)
        super().bind(stmt, env)

    def bind_loop(self, stmt: ast.For | ast.AsyncFor, env: dict[str, Any]) -> None:
        super().bind_loop(stmt, env)
        if _iterates_store(stmt.iter, "self", _OBJ_MAP_STORES):
            first = stmt.target
            if isinstance(first, ast.Tuple) and first.elts:
                first = first.elts[0]
            if isinstance(first, ast.Name):
                self.roles[first.id] = "peer"

    def on_delete(self, stmt: ast.Delete, env: dict[str, Any]) -> None:
        for target in stmt.targets:
            if isinstance(target, ast.Subscript):
                chain = attr_chain(target.value)
                if chain is not None:
                    parts = chain.split(".")
                    if (
                        len(parts) == 2
                        and parts[0] == "self"
                        and parts[1] in _OBJ_MAP_STORES
                    ):
                        self.x.summary.add(
                            ("store", _OBJ_MAP_STORES[parts[1]], "drop"), stmt
                        )

    def _classify_store(
        self, stmt: ast.Assign | ast.AnnAssign | ast.AugAssign, env: dict[str, Any]
    ) -> None:
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            chain = attr_chain(target)
            if chain is not None:
                parts = chain.split(".")
                if len(parts) == 2 and parts[0] == "self" and parts[1] in _OBJ_ATTR_STORES:
                    op = "write"
                    if isinstance(stmt, (ast.Assign, ast.AnnAssign)) and stmt.value is not None:
                        known, val = fold(stmt.value, env)
                        if known and (val is None or val is False or val == 0):
                            op = "drop"
                    self.x.summary.add(
                        ("store", _OBJ_ATTR_STORES[parts[1]], op), stmt
                    )
                continue
            if isinstance(target, ast.Subscript):
                base = attr_chain(target.value)
                if base is not None:
                    parts = base.split(".")
                    if (
                        len(parts) == 2
                        and parts[0] == "self"
                        and parts[1] in _OBJ_MAP_STORES
                    ):
                        self.x.summary.add(
                            ("store", _OBJ_MAP_STORES[parts[1]], "write"), stmt
                        )


def _iterates_store(
    iter_expr: ast.expr, base: str, stores: dict[str, str]
) -> bool:
    """``self.N`` / ``self.N.items()`` / ``list(self.N.items())`` shapes."""
    expr = iter_expr
    if isinstance(expr, ast.Call):
        fname = attr_chain(expr.func) or ""
        if fname in ("list", "sorted", "tuple") and expr.args:
            expr = expr.args[0]
    if isinstance(expr, ast.Call):
        fname = attr_chain(expr.func) or ""
        parts = fname.split(".")
        if len(parts) == 3 and parts[0] == base and parts[1] in stores:
            return parts[2] in ("items", "keys", "values")
        return False
    chain = attr_chain(expr)
    if chain is None:
        return False
    parts = chain.split(".")
    return len(parts) == 2 and parts[0] == base and parts[1] in stores


class _ObjectExtractor:
    def __init__(self, project: Project, cls: ClassInfo) -> None:
        self.project = project
        self.mro = mro_chain(project, cls)
        self.summary: EffectSummary = None  # type: ignore[assignment]
        self._stack: list[tuple[str, str]] = []

    def extract(self, method: str) -> EffectSummary | None:
        resolved = resolve_method(self.mro, method)
        if resolved is None:
            return None
        fn, idx = resolved
        defining = self.mro[idx]
        self.summary = EffectSummary("object", defining.module, method, fn)
        roles, ctx = self._action_roles(fn)
        self._walk_method(fn, idx, roles, ctx)
        return self.summary

    def _action_roles(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> tuple[dict[str, str], str | None]:
        roles: dict[str, str] = {}
        ctx: str | None = None
        params = [*fn.args.posonlyargs, *fn.args.args]
        for arg in params[1:]:  # skip self
            ann = (
                (attr_chain(arg.annotation) or "").split(".")[-1]
                if arg.annotation is not None
                else ""
            )
            if arg.arg == "ctx" or ann == "ActionContext":
                ctx = arg.arg
            elif ann in ("RefInfo", "Ref"):
                roles[arg.arg] = "info" if ann == "RefInfo" else "peer"
        return roles, ctx

    def _walk_method(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        mro_index: int,
        roles: dict[str, str],
        ctx: str | None,
    ) -> None:
        key = (self.mro[min(mro_index, len(self.mro) - 1)].name, fn.name)
        if key in self._stack or len(self._stack) > _MAX_INLINE_DEPTH:
            return
        self._stack.append(key)
        try:
            frame = _ObjectFrame(self, fn, mro_index, roles, ctx)
            frame.walk(fn.body, {})
        finally:
            self._stack.pop()

    def inline(
        self,
        call: ast.Call,
        method: str,
        start: int,
        caller: _ObjectFrame,
        env: dict[str, Any],
    ) -> None:
        resolved = resolve_method(self.mro, method, start)
        if resolved is None:
            return
        fn, idx = resolved
        params = [*fn.args.posonlyargs, *fn.args.args]
        if not _is_staticmethod(fn):
            params = params[1:]
        roles: dict[str, str] = {}
        ctx: str | None = None
        for param, arg in zip(params, call.args):
            if isinstance(arg, ast.Starred):
                continue
            if caller.ctx is not None and (
                isinstance(arg, ast.Name) and arg.id == caller.ctx
            ):
                ctx = param.arg
                continue
            role = caller.role_of(arg)
            if role != "?":
                roles[param.arg] = role
            elif (
                isinstance(arg, ast.Attribute)
                and arg.attr == "ref"
                and isinstance(arg.value, ast.Name)
                and caller.roles.get(arg.value.id) == "info"
            ):
                roles[param.arg] = "peer"
            elif isinstance(arg, ast.Name) and caller.roles.get(arg.id) == "info":
                roles[param.arg] = "info"
        self._walk_method(fn, idx, roles, ctx)


def object_summary(
    project: Project, cls: ClassInfo, method: str
) -> EffectSummary | None:
    """Effect summary of *method* resolved against *cls*'s MRO."""
    return _ObjectExtractor(project, cls).extract(method)


# --------------------------------------------------------------------------
# core-side extractor


class _CoreFrame(StmtWalker):
    """Walks one core kernel body under an is_fsp specialization."""

    def __init__(
        self,
        extractor: _CoreExtractor,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        roles: dict[str, str],
        top_level: bool,
    ) -> None:
        self.x = extractor
        self.fn = fn
        self.roles = roles
        #: map-store aliases: local name → store name (``nd = self.N[u]``)
        self.map_aliases: dict[str, str] = {}
        #: channel aliases: local name bound to ``self.ch``
        self.chan_aliases: set[str] = set()
        #: unfoldable locals kept symbolically (``rec = <packed expr>``)
        self.expr_aliases: dict[str, ast.expr] = {}
        #: True only for the kernel frame itself — a ``return`` there is
        #: the lifecycle request; helper returns are plain values.
        self.top_level = top_level

    # -- roles ------------------------------------------------------------------

    def role_of(self, expr: ast.expr) -> str:
        if isinstance(expr, ast.Name):
            return self.roles.get(expr.id, "?")
        if isinstance(expr, ast.Subscript):
            base = attr_chain(expr.value)
            if base is not None:
                parts = base.split(".")
                if len(parts) == 2 and parts[0] == "self":
                    info = _CORE_COLUMN_STORES.get(parts[1])
                    if (
                        info is not None
                        and info[0] == "anchor"
                        and self.role_of(expr.slice) == "self"
                    ):
                        return "anchor"
        return "?"

    # -- hooks ------------------------------------------------------------------

    def visit_expr(self, expr: ast.expr, env: dict[str, Any]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._visit_call(node, env)

    def _visit_call(self, call: ast.Call, env: dict[str, Any]) -> None:
        x = self.x
        if (
            isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Subscript)
            and call.func.attr in _DROP_METHODS
        ):
            # row-level release through a double access: self.N[u].pop(v)
            base = attr_chain(call.func.value.value)
            if base is not None:
                bparts = base.split(".")
                if (
                    len(bparts) == 2
                    and bparts[0] == "self"
                    and bparts[1] in _CORE_MAP_STORES
                ):
                    x.summary.add(
                        ("store", _CORE_MAP_STORES[bparts[1]], "drop"), call
                    )
            return
        chain = attr_chain(call.func)
        if chain is None:
            return
        parts = chain.split(".")
        if chain == f"self.{x.registry.plumbing['send']}":
            if len(call.args) < 5:
                x.summary.bailed = True
                return
            known, label_id = fold(call.args[2], env)
            label = (
                x.registry.label_name(label_id) or "?"
                if known and isinstance(label_id, int)
                else "?"
            )
            if label == "?":
                x.summary.bailed = True
            x.summary.add(
                ("send", label, self.role_of(call.args[1]), self.role_of(call.args[3])),
                call,
            )
            return
        if len(parts) == 2 and parts[0] in self.map_aliases:
            if parts[1] in _DROP_METHODS:
                x.summary.add(("store", self.map_aliases[parts[0]], "drop"), call)
            return
        if len(parts) == 3 and parts[0] == "self" and parts[1] in _CORE_MAP_STORES:
            if parts[2] in _DROP_METHODS:
                x.summary.add(("store", _CORE_MAP_STORES[parts[1]], "drop"), call)
            return
        if len(parts) == 2 and parts[0] == "self":
            x.inline(call, parts[1], self, env)

    def bind(
        self,
        stmt: ast.Assign | ast.AnnAssign | ast.AugAssign,
        env: dict[str, Any],
    ) -> None:
        self._classify_store(stmt, env)
        if isinstance(stmt, ast.Assign) and stmt.value is not None:
            value = stmt.value
            for target in stmt.targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                self.map_aliases.pop(name, None)
                self.chan_aliases.discard(name)
                self.expr_aliases.pop(name, None)
                role = self.role_of(value)
                if role != "?":
                    self.roles[name] = role
                else:
                    self.roles.pop(name, None)
                value_chain = attr_chain(value)
                if value_chain == "self.ch":
                    self.chan_aliases.add(name)
                elif isinstance(value, ast.Subscript):
                    base = attr_chain(value.value)
                    if base is not None:
                        bparts = base.split(".")
                        if (
                            len(bparts) == 2
                            and bparts[0] == "self"
                            and bparts[1] in _CORE_MAP_STORES
                        ):
                            self.map_aliases[name] = _CORE_MAP_STORES[bparts[1]]
                elif not isinstance(value, (ast.Constant, ast.Name)):
                    self.expr_aliases[name] = value
        super().bind(stmt, env)

    def bind_loop(self, stmt: ast.For | ast.AsyncFor, env: dict[str, Any]) -> None:
        super().bind_loop(stmt, env)
        iterates = _iterates_store(stmt.iter, "self", _CORE_MAP_STORES)
        if not iterates:
            expr = stmt.iter
            if isinstance(expr, ast.Call):
                fname = attr_chain(expr.func) or ""
                fparts = fname.split(".")
                iterates = (
                    len(fparts) == 2
                    and fparts[0] in self.map_aliases
                    and fparts[1] in ("items", "keys", "values")
                )
            elif isinstance(expr, ast.Name):
                iterates = expr.id in self.map_aliases
        if iterates:
            first = stmt.target
            if isinstance(first, ast.Tuple) and first.elts:
                first = first.elts[0]
            if isinstance(first, ast.Name):
                self.roles[first.id] = "peer"

    def on_return(self, stmt: ast.Return, env: dict[str, Any]) -> None:
        if not self.top_level or stmt.value is None:
            return
        value = pruned_ifexp(stmt.value, env)
        chain = attr_chain(value)
        if chain is not None:
            kind = _LIFECYCLE_NAMES.get(chain.split(".")[-1])
            gone = self.x.registry.plumbing.get("gone_state", "_GONE")
            if chain.split(".")[-1] == gone:
                kind = "exit"
            if kind is not None:
                self.x.summary.add(("lifecycle", kind), stmt)
            return
        if isinstance(value, ast.Constant) and value.value is None:
            return
        if isinstance(value, ast.IfExp):
            # unknown test: both lifecycle codes are possible
            for side in (value.body, value.orelse):
                self.on_return(ast.Return(value=side, lineno=stmt.lineno), env)  # type: ignore[arg-type]

    def on_delete(self, stmt: ast.Delete, env: dict[str, Any]) -> None:
        for target in stmt.targets:
            if isinstance(target, ast.Subscript):
                base = attr_chain(target.value)
                if base is None:
                    continue
                bparts = base.split(".")
                if bparts[0] in self.map_aliases and len(bparts) == 1:
                    self.x.summary.add(
                        ("store", self.map_aliases[bparts[0]], "drop"), stmt
                    )
                elif (
                    len(bparts) == 2
                    and bparts[0] == "self"
                    and bparts[1] in _CORE_MAP_STORES
                ):
                    self.x.summary.add(
                        ("store", _CORE_MAP_STORES[bparts[1]], "drop"), stmt
                    )

    def _classify_store(
        self, stmt: ast.Assign | ast.AnnAssign | ast.AugAssign, env: dict[str, Any]
    ) -> None:
        x = self.x
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        value = stmt.value
        for target in targets:
            if not isinstance(target, ast.Subscript):
                continue
            # column write: self.<col>[u] = v  (or an aliased column)
            base = attr_chain(target.value)
            if base is not None:
                parts = base.split(".")
                col = None
                if len(parts) == 2 and parts[0] == "self":
                    col = parts[1]
                elif len(parts) == 1 and parts[0] not in self.map_aliases:
                    # hoisted column locals keep the column name
                    col = parts[0]
                if col is not None and col in _CORE_COLUMN_STORES:
                    store, sentinel = _CORE_COLUMN_STORES[col]
                    op = "write"
                    if isinstance(stmt, (ast.Assign, ast.AnnAssign)) and value is not None:
                        known, val = fold(value, env)
                        if known and isinstance(val, int):
                            if sentinel == "neg" and val < 0:
                                op = "drop"
                            elif sentinel == "zero" and val == 0:
                                op = "drop"
                            elif sentinel == "none" and val == env.get("_NONE", 2):
                                op = "drop"
                    x.summary.add(("store", store, op), stmt)
                    continue
                if col is not None and col in _CORE_MAP_STORES:
                    # direct row write self.N[u][v] has a Subscript base
                    # and is handled below; a plain self.N[u] = {} reset
                    # is bookkeeping, not a protocol store effect.
                    continue
                if len(parts) == 1 and parts[0] in self.map_aliases:
                    x.summary.add(
                        ("store", self.map_aliases[parts[0]], "write"), stmt
                    )
                    continue
            # row write through a double subscript: self.N[u][v] = m
            if isinstance(target.value, ast.Subscript):
                inner = attr_chain(target.value.value)
                if inner is not None:
                    iparts = inner.split(".")
                    if (
                        len(iparts) == 2
                        and iparts[0] == "self"
                        and iparts[1] in _CORE_MAP_STORES
                    ):
                        x.summary.add(
                            ("store", _CORE_MAP_STORES[iparts[1]], "write"), stmt
                        )
                        continue
                    # inlined packed post: ch[v][seq] = rec
                    if inner == "self.ch" or (
                        len(iparts) == 1 and iparts[0] in self.chan_aliases
                    ):
                        self._classify_packed_post(stmt, target, env)
        # oracle bookkeeping: self.oq += 1 inside the oracle kernel
        if isinstance(stmt, ast.AugAssign):
            chain = attr_chain(stmt.target)
            if chain == "self.oq":
                x.summary.add(("oracle",), stmt)

    def _classify_packed_post(
        self,
        stmt: ast.Assign | ast.AnnAssign | ast.AugAssign,
        target: ast.Subscript,
        env: dict[str, Any],
    ) -> None:
        """``ch[v][seq] = rec`` — a hand-inlined channel post."""
        x = self.x
        value = stmt.value
        if value is None:
            return
        if isinstance(value, ast.Name):
            value = self.expr_aliases.get(value.id, value)
        label_byte = low_bits(value, env, bits=8)
        label = (
            x.registry.label_name(label_byte) or "?"
            if label_byte is not None
            else "?"
        )
        if label == "?":
            x.summary.bailed = True
        assert isinstance(target.value, ast.Subscript)
        dest = self.role_of(target.value.slice)
        subj_shift = env.get("_SUBJ_SHIFT")
        subject = "?"
        if isinstance(subj_shift, int):
            operand = shifted_operand(value, env, subj_shift)
            if operand is not None:
                subject = self.role_of(operand)
        x.summary.add(("send", label, dest, subject), stmt)


class _CoreExtractor:
    def __init__(
        self, project: Project, registry: MirrorRegistry, core: ClassInfo, is_fsp: bool
    ) -> None:
        self.project = project
        self.registry = registry
        self.core = core
        self.is_fsp = is_fsp
        self.methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        for stmt in core.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[stmt.name] = stmt
        self.base_env = dict(module_constants(registry.module.tree))
        self.base_env["self.is_fsp"] = is_fsp
        self.summary: EffectSummary = None  # type: ignore[assignment]
        self._stack: list[str] = []

    def extract(self, action: ActionRow) -> EffectSummary | None:
        fn = self.methods.get(action.kernel)
        if fn is None:
            return None
        self.summary = EffectSummary("core", self.registry.module, action.kernel, fn)
        roles: dict[str, str] = {}
        params = [*fn.args.posonlyargs, *fn.args.args][1:]  # skip self
        if params:
            roles[params[0].arg] = "self"
        if action.kind == "deliver" and len(params) >= 2:
            roles[params[1].arg] = "peer"
        self._walk(fn, roles, top_level=True)
        return self.summary

    def _walk(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        roles: dict[str, str],
        top_level: bool,
    ) -> None:
        if fn.name in self._stack or len(self._stack) > _MAX_INLINE_DEPTH:
            return
        self._stack.append(fn.name)
        try:
            frame = _CoreFrame(self, fn, roles, top_level)
            frame.walk(fn.body, dict(self.base_env))
        finally:
            self._stack.pop()

    def inline(
        self, call: ast.Call, method: str, caller: _CoreFrame, env: dict[str, Any]
    ) -> None:
        fn = self.methods.get(method)
        if fn is None:
            return
        params = [*fn.args.posonlyargs, *fn.args.args]
        if not _is_staticmethod(fn):
            params = params[1:]
        roles: dict[str, str] = {}
        for param, arg in zip(params, call.args):
            if isinstance(arg, ast.Starred):
                continue
            role = caller.role_of(arg)
            if role != "?":
                roles[param.arg] = role
        self._walk(fn, roles, top_level=False)


def core_summary(
    project: Project,
    registry: MirrorRegistry,
    core: ClassInfo,
    action: ActionRow,
    is_fsp: bool,
) -> EffectSummary | None:
    """Effect summary of *action*'s kernel specialized for *is_fsp*."""
    return _CoreExtractor(project, registry, core, is_fsp).extract(action)
