"""Scenario builders: admissible (possibly corrupted) initial FDP/FSP states.

Self-stabilization is quantified over arbitrary initial states subject to
Section 1.2's admissibility constraints. A *scenario* pins one such state
down reproducibly: a topology (edge list), a leaving/staying assignment,
and a :class:`Corruption` describing how far from clean the state is —
flipped mode beliefs, spurious anchors, stale in-flight messages.

All randomness is seeded; the same ``(edges, modes, corruption, seed)``
always produces the identical initial state, which is what makes the
experiment sweeps and the hypothesis property tests reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from random import Random
from collections.abc import Callable, Iterable, Sequence

from repro.core.fdp import FDPProcess
from repro.core.fsp import FSPProcess
from repro.core.oracles import ORACLES, SingleOracle
from repro.errors import ConfigurationError
from repro.graphs.connectivity import weakly_connected_components
from repro.sim.engine import Engine
from repro.sim.faults import random_mode_claim, scatter_garbage_messages
from repro.sim.refs import pid_of
from repro.sim.scheduler import (
    AdversarialScheduler,
    OldestFirstScheduler,
    RandomScheduler,
    Scheduler,
    SynchronousScheduler,
)
from repro.sim.states import Capability, Mode, PState

__all__ = [
    "Corruption",
    "CLEAN",
    "LIGHT_CORRUPTION",
    "HEAVY_CORRUPTION",
    "SCHEDULER_FACTORIES",
    "choose_leaving",
    "components_of_edges",
    "corruption_from_factor",
    "build_fdp_engine",
    "build_fsp_engine",
    "build_from_meta",
    "scramble_beliefs",
]

#: name → seeded scheduler factory: the four fair scheduler families the
#: CLI, trace headers and failure capsules refer to by name.
SCHEDULER_FACTORIES: dict[str, Callable[[int], Scheduler]] = {
    "random": lambda seed: RandomScheduler(seed),
    "oldest": lambda seed: OldestFirstScheduler(),
    "adversarial": lambda seed: AdversarialScheduler(patience=32, seed=seed),
    "sync": lambda seed: SynchronousScheduler(seed=seed),
}


def corruption_from_factor(factor: float) -> Corruption:
    """Map a scalar knob in [0, 1] to a :class:`Corruption` profile.

    0 is :data:`CLEAN`; 1 is :data:`HEAVY_CORRUPTION`'s coefficients. The
    scalar form is what the CLI, trace headers and failure capsules
    store, so the mapping lives here as part of the meta vocabulary.
    """
    if factor <= 0:
        return CLEAN
    return Corruption(
        belief_lie_prob=0.5 * factor,
        anchor_prob=0.8 * factor,
        anchor_lie_prob=0.5 * factor,
        garbage_per_process=2.0 * factor,
    )


@dataclass(frozen=True)
class Corruption:
    """How adversarial the initial state is.

    All probabilities are per-item (per stored belief, per process, …).
    ``garbage_per_process`` stale messages are planted per process, each
    carrying a random same-component reference whose claimed mode lies
    with probability ``garbage_lie_prob``.
    """

    belief_lie_prob: float = 0.0
    anchor_prob: float = 0.0
    anchor_lie_prob: float = 0.0
    garbage_per_process: float = 0.0
    garbage_lie_prob: float = 0.5

    def scaled(self, factor: float) -> Corruption:
        """A proportionally milder/harsher copy (for corruption sweeps)."""
        return replace(
            self,
            belief_lie_prob=min(1.0, self.belief_lie_prob * factor),
            anchor_prob=min(1.0, self.anchor_prob * factor),
            anchor_lie_prob=min(1.0, self.anchor_lie_prob * factor),
            garbage_per_process=self.garbage_per_process * factor,
        )


#: A clean start: correct beliefs, no anchors, empty channels.
CLEAN = Corruption()

#: Mild transient fault: a few wrong beliefs and stray messages.
LIGHT_CORRUPTION = Corruption(
    belief_lie_prob=0.1,
    anchor_prob=0.2,
    anchor_lie_prob=0.2,
    garbage_per_process=0.5,
)

#: Heavy fault: half of all information is wrong, channels full of garbage.
HEAVY_CORRUPTION = Corruption(
    belief_lie_prob=0.5,
    anchor_prob=0.8,
    anchor_lie_prob=0.5,
    garbage_per_process=2.0,
)


def components_of_edges(
    n: int, edges: Iterable[tuple[int, int]]
) -> list[frozenset[int]]:
    """Weakly connected components of the directed edge list over 0..n-1."""
    adj: dict[int, set[int]] = {i: set() for i in range(n)}
    for a, b in edges:
        if a not in adj or b not in adj:
            raise ConfigurationError(f"edge ({a}, {b}) outside 0..{n - 1}")
        adj[a].add(b)
        adj[b].add(a)
    return weakly_connected_components(adj)


def choose_leaving(
    n: int,
    edges: Sequence[tuple[int, int]],
    *,
    fraction: float | None = None,
    count: int | None = None,
    seed: int = 0,
) -> frozenset[int]:
    """Pick a leaving set of the requested size, keeping at least one
    staying process in every weakly connected component (the paper's
    precondition for Sections 3–4)."""

    if (fraction is None) == (count is None):
        raise ConfigurationError("specify exactly one of fraction / count")
    if fraction is not None:
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError("fraction must lie in [0, 1]")
        count = int(round(fraction * n))
    assert count is not None
    count = max(0, min(count, n))
    rng = Random(seed)
    pids = list(range(n))
    rng.shuffle(pids)
    leaving = set(pids[:count])
    for comp in components_of_edges(n, edges):
        if comp <= leaving:
            # Flip one member back to staying (deterministically: smallest).
            leaving.discard(min(comp))
    return frozenset(leaving)


def _build_engine(
    process_cls: type[FDPProcess],
    capability: Capability,
    n: int,
    edges: Sequence[tuple[int, int]],
    leaving: Iterable[int],
    *,
    corruption: Corruption = CLEAN,
    scheduler: Scheduler | None = None,
    seed: int = 0,
    oracle: Callable | None = None,
    monitors: Sequence[Callable] = (),
    tracer: object | None = None,
    provenance: object | None = None,
    strict: bool = True,
    graph_mode: str | None = None,
    engine_mode: str | None = None,
) -> Engine:
    if n < 1:
        raise ConfigurationError("need at least one process")
    leaving_set = frozenset(leaving)
    for pid in leaving_set:
        if not 0 <= pid < n:
            raise ConfigurationError(f"leaving pid {pid} outside 0..{n - 1}")
    rng = Random(seed ^ 0x5CE9A210)

    def actual(pid: int) -> Mode:
        return Mode.LEAVING if pid in leaving_set else Mode.STAYING

    # Pre-create processes so refs exist for cross-wiring.
    procs = {pid: process_cls(pid, actual(pid)) for pid in range(n)}

    comps = components_of_edges(n, edges)
    comp_of: dict[int, frozenset[int]] = {}
    for comp in comps:
        for pid in comp:
            comp_of[pid] = comp

    # Neighbourhoods from the edge list, beliefs possibly corrupted.
    for a, b in edges:
        if not (0 <= a < n and 0 <= b < n):
            raise ConfigurationError(f"edge ({a}, {b}) outside 0..{n - 1}")
        if a == b:
            continue
        belief = random_mode_claim(rng, actual(b), corruption.belief_lie_prob)
        procs[a].N[procs[b].self_ref] = belief

    # Spurious anchors (within the process's own component, so corruption
    # does not manufacture connectivity across components).
    if corruption.anchor_prob > 0.0:
        for pid in range(n):
            if rng.random() >= corruption.anchor_prob:
                continue
            others = sorted(comp_of[pid] - {pid})
            if not others:
                continue
            target = others[rng.randrange(len(others))]
            procs[pid].anchor = procs[target].self_ref
            procs[pid].anchor_belief = random_mode_claim(
                rng, actual(target), corruption.anchor_lie_prob
            )

    engine = Engine(
        procs.values(),
        scheduler if scheduler is not None else RandomScheduler(seed),
        capability=capability,
        oracle=oracle,
        seed=seed,
        strict=strict,
        monitors=monitors,
        tracer=tracer,
        provenance=provenance,
        graph_mode=graph_mode,
        engine_mode=engine_mode,
    )

    # The engine (and with it any provenance tracker) exists before the
    # garbage is scattered, so planted messages get lineage roots too.
    if corruption.garbage_per_process > 0.0:
        for comp in comps:
            members = sorted(comp)
            budget = int(round(corruption.garbage_per_process * len(members)))
            scatter_garbage_messages(
                engine,
                rng,
                budget,
                lie_prob=corruption.garbage_lie_prob,
                targets=members,
                subjects=members,
                confine_component=True,
            )
    return engine


def build_fdp_engine(
    n: int,
    edges: Sequence[tuple[int, int]],
    leaving: Iterable[int],
    *,
    corruption: Corruption = CLEAN,
    scheduler: Scheduler | None = None,
    seed: int = 0,
    oracle: Callable | None = None,
    monitors: Sequence[Callable] = (),
    tracer: object | None = None,
    provenance: object | None = None,
    strict: bool = True,
    graph_mode: str | None = None,
    engine_mode: str | None = None,
) -> Engine:
    """An FDP run: :class:`FDPProcess` population, ``exit`` available,
    ``SINGLE`` oracle by default."""

    return _build_engine(
        FDPProcess,
        Capability.EXIT,
        n,
        edges,
        leaving,
        corruption=corruption,
        scheduler=scheduler,
        seed=seed,
        oracle=oracle if oracle is not None else SingleOracle(),
        monitors=monitors,
        tracer=tracer,
        provenance=provenance,
        strict=strict,
        graph_mode=graph_mode,
        engine_mode=engine_mode,
    )


def build_framework_engine(
    n: int,
    edges: Sequence[tuple[int, int]],
    leaving: Iterable[int],
    logic_cls,
    *,
    corruption: Corruption = CLEAN,
    scheduler: Scheduler | None = None,
    seed: int = 0,
    oracle: Callable | None = None,
    monitors: Sequence[Callable] = (),
    tracer: object | None = None,
    strict: bool = True,
    graph_mode: str | None = None,
    engine_mode: str | None = None,
) -> Engine:
    """A Section 4 run: P′ = framework(P) population over *logic_cls*.

    Initial P neighbourhoods come from the edge list (fed through the
    logic's integrate hook); belief corruption applies to the framework's
    mode-belief table; anchors and channel garbage as in the FDP builder.
    """

    from repro.core.framework import FrameworkProcess

    if n < 1:
        raise ConfigurationError("need at least one process")
    leaving_set = frozenset(leaving)
    rng = Random(seed ^ 0x5CE9A210)

    def actual(pid: int) -> Mode:
        return Mode.LEAVING if pid in leaving_set else Mode.STAYING

    procs = {
        pid: FrameworkProcess(pid, actual(pid), logic_cls) for pid in range(n)
    }
    comps = components_of_edges(n, edges)
    comp_of: dict[int, frozenset[int]] = {}
    for comp in comps:
        for pid in comp:
            comp_of[pid] = comp

    from repro.sim.refs import KeyProvider

    keyprov = KeyProvider()
    for a, b in edges:
        if not (0 <= a < n and 0 <= b < n):
            raise ConfigurationError(f"edge ({a}, {b}) outside 0..{n - 1}")
        if a == b:
            continue
        logic = procs[a].logic
        if hasattr(logic, "integrate_with_keys"):
            logic.integrate_with_keys(keyprov, procs[b].self_ref)
        else:
            logic.integrate(lambda *aa, **kk: None, procs[b].self_ref)
        procs[a].beliefs[procs[b].self_ref] = random_mode_claim(
            rng, actual(b), corruption.belief_lie_prob
        )

    if corruption.anchor_prob > 0.0:
        for pid in range(n):
            if rng.random() >= corruption.anchor_prob:
                continue
            others = sorted(comp_of[pid] - {pid})
            if not others:
                continue
            target = others[rng.randrange(len(others))]
            procs[pid].anchor = procs[target].self_ref
            procs[pid].anchor_belief = random_mode_claim(
                rng, actual(target), corruption.anchor_lie_prob
            )

    engine = Engine(
        procs.values(),
        scheduler if scheduler is not None else RandomScheduler(seed),
        capability=Capability.EXIT,
        oracle=oracle if oracle is not None else SingleOracle(),
        seed=seed,
        strict=strict,
        monitors=monitors,
        tracer=tracer,
        graph_mode=graph_mode,
        engine_mode=engine_mode,
    )
    if corruption.garbage_per_process > 0.0:
        for comp in comps:
            members = sorted(comp)
            budget = int(round(corruption.garbage_per_process * len(members)))
            scatter_garbage_messages(
                engine,
                rng,
                budget,
                lie_prob=corruption.garbage_lie_prob,
                targets=members,
                subjects=members,
                confine_component=True,
            )
    return engine


def build_fsp_engine(
    n: int,
    edges: Sequence[tuple[int, int]],
    leaving: Iterable[int],
    *,
    corruption: Corruption = CLEAN,
    scheduler: Scheduler | None = None,
    seed: int = 0,
    monitors: Sequence[Callable] = (),
    tracer: object | None = None,
    provenance: object | None = None,
    strict: bool = True,
    graph_mode: str | None = None,
    engine_mode: str | None = None,
) -> Engine:
    """An FSP run: :class:`FSPProcess` population, ``sleep`` available,
    no oracle (the FSP needs none)."""

    return _build_engine(
        FSPProcess,
        Capability.SLEEP,
        n,
        edges,
        leaving,
        corruption=corruption,
        scheduler=scheduler,
        seed=seed,
        oracle=None,
        monitors=monitors,
        tracer=tracer,
        provenance=provenance,
        strict=strict,
        graph_mode=graph_mode,
        engine_mode=engine_mode,
    )


# ------------------------------------------------------------ mid-run faults


def scramble_beliefs(
    engine: Engine,
    rng: Random,
    *,
    lie_prob: float = 0.5,
    pids: Iterable[int] | None = None,
) -> int:
    """Protocol-specific mid-run transient fault: corrupt stored beliefs.

    Walks each (non-gone) process's belief surfaces — the FDP/FSP
    neighbourhood table ``N``, the framework's mode-belief table
    ``beliefs``, and the anchor belief — and with probability *lie_prob*
    per entry sets the stored mode to the *wrong* one. No reference is
    added or removed: the edge multiset keeps its endpoints, so §1.2's
    "references belong to existing processes" and the per-component
    structure hold trivially; Φ may rise, which is the point (the
    adversary re-poisons the information layer without touching
    connectivity). Processes without belief surfaces (plain overlay
    logics) are skipped.

    Signals ``engine._dirty = True`` when anything changed so the live
    graph rebuilds. Callers running a
    :class:`~repro.sim.monitors.PotentialMonitor` must ``rebase()`` it
    afterwards. Returns the number of beliefs flipped.
    """

    if not 0.0 <= lie_prob <= 1.0:
        raise ConfigurationError("lie_prob must lie in [0, 1]")
    pool = sorted(pids) if pids is not None else sorted(engine.processes)
    flipped = 0
    for pid in pool:
        proc = engine.processes[pid]
        if proc.state is PState.GONE:
            continue
        for table_name in ("N", "beliefs"):
            table = getattr(proc, table_name, None)
            if table is None or not hasattr(table, "items"):
                continue
            for ref, belief in list(table.items()):
                if not isinstance(belief, Mode):
                    continue
                if rng.random() < lie_prob:
                    wrong = engine.actual_mode(pid_of(ref)).opposite
                    if belief is not wrong:
                        table[ref] = wrong
                        flipped += 1
        anchor = getattr(proc, "anchor", None)
        if anchor is not None and rng.random() < lie_prob:
            wrong = engine.actual_mode(pid_of(anchor)).opposite
            if getattr(proc, "anchor_belief", None) is not wrong:
                proc.anchor_belief = wrong
                flipped += 1
    if flipped:
        # Out-of-band writes bypassed the delta plumbing; schedule a full
        # live-graph rebuild and lifecycle recount.
        engine._dirty = True  # noqa: SLF001 - sanctioned out-of-band hook
    return flipped


# ------------------------------------------------------------ meta rebuilds


def _edges_from_generator(topology: str, n: int, seed: int) -> list[tuple[int, int]]:
    from repro.graphs.generators import GENERATORS

    gen = GENERATORS[topology]
    try:
        return gen(n, seed=seed)  # type: ignore[call-arg]
    except TypeError:
        return gen(n)


def build_from_meta(
    meta: dict,
    *,
    tracer: object | None = None,
    monitors: Sequence[Callable] = (),
    engine_mode: str | None = None,
) -> Engine:
    """Rebuild a scenario's exact initial state from its metadata dict.

    The dict is the JSON-serializable parameter set that trace headers
    and failure capsules store; every builder in the chain (topology
    generator, :func:`choose_leaving`, corruption, engine construction)
    is a pure function of it, so the reconstruction is bit-identical.
    Recognized keys:

    * ``scenario`` — ``"fdp"`` (default), ``"fsp"`` or ``"framework"``;
    * ``n``, ``seed`` — population size and master seed;
    * ``topology`` — generator name, or explicit ``edges`` as
      ``[[a, b], ...]`` (takes precedence; what the shrinker emits);
    * ``leaving`` — fraction for :func:`choose_leaving`, or explicit
      ``leaving_pids`` (takes precedence);
    * ``corruption`` — scalar factor for :func:`corruption_from_factor`,
      or a dict of :class:`Corruption` fields;
    * ``scheduler`` — a :data:`SCHEDULER_FACTORIES` name (default
      ``"random"``), seeded with ``seed``;
    * ``oracle`` — an oracle registry name (default ``"single"``);
    * ``protocol`` — overlay logic name (framework scenario only);
    * ``net`` — a :meth:`repro.net.ReliableTransport.config` dict; when
      present the rebuilt engine gets a reliable transport over the
      configured unreliable underlay installed before any step runs
      (the transport is itself a pure function of its config, so faulty
      runs rebuild bit-identically).

    *engine_mode* selects the execution core for the rebuilt engine
    (``objects``/``soa``/``verify``; ``None`` defers to the
    ``REPRO_ENGINE_MODE`` environment default). The cores are
    bit-identical, so replays agree regardless of which core the
    original run used.
    """

    n = meta["n"]
    seed = meta.get("seed", 0)
    if meta.get("edges") is not None:
        edges = [tuple(e) for e in meta["edges"]]
    else:
        edges = _edges_from_generator(meta["topology"], n, seed)
    if meta.get("leaving_pids") is not None:
        leaving: frozenset[int] = frozenset(meta["leaving_pids"])
    else:
        leaving = choose_leaving(
            n, edges, fraction=meta.get("leaving", 0.0), seed=seed
        )
    corr = meta.get("corruption", 0.0)
    corruption = (
        Corruption(**corr) if isinstance(corr, dict)
        else corruption_from_factor(float(corr))
    )
    scheduler_name = meta.get("scheduler", "random")
    if scheduler_name not in SCHEDULER_FACTORIES:
        raise ConfigurationError(f"unknown scheduler {scheduler_name!r} in meta")
    scheduler = SCHEDULER_FACTORIES[scheduler_name](seed)
    scenario = meta.get("scenario", "fdp")
    common = dict(
        corruption=corruption,
        scheduler=scheduler,
        seed=seed,
        tracer=tracer,
        monitors=monitors,
        engine_mode=engine_mode,
    )
    if scenario == "fsp":
        engine = build_fsp_engine(n, edges, leaving, **common)
    elif scenario == "framework":
        from repro.overlays import LOGICS

        oracle_cls = ORACLES[meta.get("oracle", "single")]
        logic = LOGICS[meta["protocol"]]
        engine = build_framework_engine(
            n, edges, leaving, logic, oracle=oracle_cls(), **common
        )
    elif scenario == "fdp":
        oracle_cls = ORACLES[meta.get("oracle", "single")]
        engine = build_fdp_engine(n, edges, leaving, oracle=oracle_cls(), **common)
    else:
        raise ConfigurationError(f"unknown scenario {scenario!r} in meta")
    if meta.get("net") is not None:
        from repro.net import ReliableTransport

        ReliableTransport.from_config(meta["net"]).install(engine)
    return engine
