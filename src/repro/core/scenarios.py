"""Scenario builders: admissible (possibly corrupted) initial FDP/FSP states.

Self-stabilization is quantified over arbitrary initial states subject to
Section 1.2's admissibility constraints. A *scenario* pins one such state
down reproducibly: a topology (edge list), a leaving/staying assignment,
and a :class:`Corruption` describing how far from clean the state is —
flipped mode beliefs, spurious anchors, stale in-flight messages.

All randomness is seeded; the same ``(edges, modes, corruption, seed)``
always produces the identical initial state, which is what makes the
experiment sweeps and the hypothesis property tests reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from random import Random
from collections.abc import Callable, Iterable, Sequence

from repro.core.fdp import FDPProcess
from repro.core.fsp import FSPProcess
from repro.core.oracles import SingleOracle
from repro.errors import ConfigurationError
from repro.graphs.connectivity import weakly_connected_components
from repro.sim.engine import Engine
from repro.sim.faults import random_mode_claim, scatter_garbage_messages
from repro.sim.scheduler import RandomScheduler, Scheduler
from repro.sim.states import Capability, Mode

__all__ = [
    "Corruption",
    "CLEAN",
    "LIGHT_CORRUPTION",
    "HEAVY_CORRUPTION",
    "choose_leaving",
    "components_of_edges",
    "build_fdp_engine",
    "build_fsp_engine",
]


@dataclass(frozen=True)
class Corruption:
    """How adversarial the initial state is.

    All probabilities are per-item (per stored belief, per process, …).
    ``garbage_per_process`` stale messages are planted per process, each
    carrying a random same-component reference whose claimed mode lies
    with probability ``garbage_lie_prob``.
    """

    belief_lie_prob: float = 0.0
    anchor_prob: float = 0.0
    anchor_lie_prob: float = 0.0
    garbage_per_process: float = 0.0
    garbage_lie_prob: float = 0.5

    def scaled(self, factor: float) -> Corruption:
        """A proportionally milder/harsher copy (for corruption sweeps)."""
        return replace(
            self,
            belief_lie_prob=min(1.0, self.belief_lie_prob * factor),
            anchor_prob=min(1.0, self.anchor_prob * factor),
            anchor_lie_prob=min(1.0, self.anchor_lie_prob * factor),
            garbage_per_process=self.garbage_per_process * factor,
        )


#: A clean start: correct beliefs, no anchors, empty channels.
CLEAN = Corruption()

#: Mild transient fault: a few wrong beliefs and stray messages.
LIGHT_CORRUPTION = Corruption(
    belief_lie_prob=0.1,
    anchor_prob=0.2,
    anchor_lie_prob=0.2,
    garbage_per_process=0.5,
)

#: Heavy fault: half of all information is wrong, channels full of garbage.
HEAVY_CORRUPTION = Corruption(
    belief_lie_prob=0.5,
    anchor_prob=0.8,
    anchor_lie_prob=0.5,
    garbage_per_process=2.0,
)


def components_of_edges(
    n: int, edges: Iterable[tuple[int, int]]
) -> list[frozenset[int]]:
    """Weakly connected components of the directed edge list over 0..n-1."""
    adj: dict[int, set[int]] = {i: set() for i in range(n)}
    for a, b in edges:
        if a not in adj or b not in adj:
            raise ConfigurationError(f"edge ({a}, {b}) outside 0..{n - 1}")
        adj[a].add(b)
        adj[b].add(a)
    return weakly_connected_components(adj)


def choose_leaving(
    n: int,
    edges: Sequence[tuple[int, int]],
    *,
    fraction: float | None = None,
    count: int | None = None,
    seed: int = 0,
) -> frozenset[int]:
    """Pick a leaving set of the requested size, keeping at least one
    staying process in every weakly connected component (the paper's
    precondition for Sections 3–4)."""

    if (fraction is None) == (count is None):
        raise ConfigurationError("specify exactly one of fraction / count")
    if fraction is not None:
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError("fraction must lie in [0, 1]")
        count = int(round(fraction * n))
    assert count is not None
    count = max(0, min(count, n))
    rng = Random(seed)
    pids = list(range(n))
    rng.shuffle(pids)
    leaving = set(pids[:count])
    for comp in components_of_edges(n, edges):
        if comp <= leaving:
            # Flip one member back to staying (deterministically: smallest).
            leaving.discard(min(comp))
    return frozenset(leaving)


def _build_engine(
    process_cls: type[FDPProcess],
    capability: Capability,
    n: int,
    edges: Sequence[tuple[int, int]],
    leaving: Iterable[int],
    *,
    corruption: Corruption = CLEAN,
    scheduler: Scheduler | None = None,
    seed: int = 0,
    oracle: Callable | None = None,
    monitors: Sequence[Callable] = (),
    tracer: object | None = None,
    provenance: object | None = None,
    strict: bool = True,
    graph_mode: str | None = None,
) -> Engine:
    if n < 1:
        raise ConfigurationError("need at least one process")
    leaving_set = frozenset(leaving)
    for pid in leaving_set:
        if not 0 <= pid < n:
            raise ConfigurationError(f"leaving pid {pid} outside 0..{n - 1}")
    rng = Random(seed ^ 0x5CE9A210)

    def actual(pid: int) -> Mode:
        return Mode.LEAVING if pid in leaving_set else Mode.STAYING

    # Pre-create processes so refs exist for cross-wiring.
    procs = {pid: process_cls(pid, actual(pid)) for pid in range(n)}

    comps = components_of_edges(n, edges)
    comp_of: dict[int, frozenset[int]] = {}
    for comp in comps:
        for pid in comp:
            comp_of[pid] = comp

    # Neighbourhoods from the edge list, beliefs possibly corrupted.
    for a, b in edges:
        if not (0 <= a < n and 0 <= b < n):
            raise ConfigurationError(f"edge ({a}, {b}) outside 0..{n - 1}")
        if a == b:
            continue
        belief = random_mode_claim(rng, actual(b), corruption.belief_lie_prob)
        procs[a].N[procs[b].self_ref] = belief

    # Spurious anchors (within the process's own component, so corruption
    # does not manufacture connectivity across components).
    if corruption.anchor_prob > 0.0:
        for pid in range(n):
            if rng.random() >= corruption.anchor_prob:
                continue
            others = sorted(comp_of[pid] - {pid})
            if not others:
                continue
            target = others[rng.randrange(len(others))]
            procs[pid].anchor = procs[target].self_ref
            procs[pid].anchor_belief = random_mode_claim(
                rng, actual(target), corruption.anchor_lie_prob
            )

    engine = Engine(
        procs.values(),
        scheduler if scheduler is not None else RandomScheduler(seed),
        capability=capability,
        oracle=oracle,
        seed=seed,
        strict=strict,
        monitors=monitors,
        tracer=tracer,
        provenance=provenance,
        graph_mode=graph_mode,
    )

    # The engine (and with it any provenance tracker) exists before the
    # garbage is scattered, so planted messages get lineage roots too.
    if corruption.garbage_per_process > 0.0:
        for comp in comps:
            members = sorted(comp)
            budget = int(round(corruption.garbage_per_process * len(members)))
            scatter_garbage_messages(
                engine,
                rng,
                budget,
                lie_prob=corruption.garbage_lie_prob,
                targets=members,
                subjects=members,
            )
    return engine


def build_fdp_engine(
    n: int,
    edges: Sequence[tuple[int, int]],
    leaving: Iterable[int],
    *,
    corruption: Corruption = CLEAN,
    scheduler: Scheduler | None = None,
    seed: int = 0,
    oracle: Callable | None = None,
    monitors: Sequence[Callable] = (),
    tracer: object | None = None,
    provenance: object | None = None,
    strict: bool = True,
    graph_mode: str | None = None,
) -> Engine:
    """An FDP run: :class:`FDPProcess` population, ``exit`` available,
    ``SINGLE`` oracle by default."""

    return _build_engine(
        FDPProcess,
        Capability.EXIT,
        n,
        edges,
        leaving,
        corruption=corruption,
        scheduler=scheduler,
        seed=seed,
        oracle=oracle if oracle is not None else SingleOracle(),
        monitors=monitors,
        tracer=tracer,
        provenance=provenance,
        strict=strict,
        graph_mode=graph_mode,
    )


def build_framework_engine(
    n: int,
    edges: Sequence[tuple[int, int]],
    leaving: Iterable[int],
    logic_cls,
    *,
    corruption: Corruption = CLEAN,
    scheduler: Scheduler | None = None,
    seed: int = 0,
    oracle: Callable | None = None,
    monitors: Sequence[Callable] = (),
    strict: bool = True,
    graph_mode: str | None = None,
) -> Engine:
    """A Section 4 run: P′ = framework(P) population over *logic_cls*.

    Initial P neighbourhoods come from the edge list (fed through the
    logic's integrate hook); belief corruption applies to the framework's
    mode-belief table; anchors and channel garbage as in the FDP builder.
    """

    from repro.core.framework import FrameworkProcess

    if n < 1:
        raise ConfigurationError("need at least one process")
    leaving_set = frozenset(leaving)
    rng = Random(seed ^ 0x5CE9A210)

    def actual(pid: int) -> Mode:
        return Mode.LEAVING if pid in leaving_set else Mode.STAYING

    procs = {
        pid: FrameworkProcess(pid, actual(pid), logic_cls) for pid in range(n)
    }
    comps = components_of_edges(n, edges)
    comp_of: dict[int, frozenset[int]] = {}
    for comp in comps:
        for pid in comp:
            comp_of[pid] = comp

    from repro.sim.refs import KeyProvider

    keyprov = KeyProvider()
    for a, b in edges:
        if not (0 <= a < n and 0 <= b < n):
            raise ConfigurationError(f"edge ({a}, {b}) outside 0..{n - 1}")
        if a == b:
            continue
        logic = procs[a].logic
        if hasattr(logic, "integrate_with_keys"):
            logic.integrate_with_keys(keyprov, procs[b].self_ref)
        else:
            logic.integrate(lambda *aa, **kk: None, procs[b].self_ref)
        procs[a].beliefs[procs[b].self_ref] = random_mode_claim(
            rng, actual(b), corruption.belief_lie_prob
        )

    if corruption.anchor_prob > 0.0:
        for pid in range(n):
            if rng.random() >= corruption.anchor_prob:
                continue
            others = sorted(comp_of[pid] - {pid})
            if not others:
                continue
            target = others[rng.randrange(len(others))]
            procs[pid].anchor = procs[target].self_ref
            procs[pid].anchor_belief = random_mode_claim(
                rng, actual(target), corruption.anchor_lie_prob
            )

    engine = Engine(
        procs.values(),
        scheduler if scheduler is not None else RandomScheduler(seed),
        capability=Capability.EXIT,
        oracle=oracle if oracle is not None else SingleOracle(),
        seed=seed,
        strict=strict,
        monitors=monitors,
        graph_mode=graph_mode,
    )
    if corruption.garbage_per_process > 0.0:
        for comp in comps:
            members = sorted(comp)
            budget = int(round(corruption.garbage_per_process * len(members)))
            scatter_garbage_messages(
                engine,
                rng,
                budget,
                lie_prob=corruption.garbage_lie_prob,
                targets=members,
                subjects=members,
            )
    return engine


def build_fsp_engine(
    n: int,
    edges: Sequence[tuple[int, int]],
    leaving: Iterable[int],
    *,
    corruption: Corruption = CLEAN,
    scheduler: Scheduler | None = None,
    seed: int = 0,
    monitors: Sequence[Callable] = (),
    tracer: object | None = None,
    provenance: object | None = None,
    strict: bool = True,
    graph_mode: str | None = None,
) -> Engine:
    """An FSP run: :class:`FSPProcess` population, ``sleep`` available,
    no oracle (the FSP needs none)."""

    return _build_engine(
        FSPProcess,
        Capability.SLEEP,
        n,
        edges,
        leaving,
        corruption=corruption,
        scheduler=scheduler,
        seed=seed,
        oracle=None,
        monitors=monitors,
        tracer=tracer,
        provenance=provenance,
        strict=strict,
        graph_mode=graph_mode,
    )
