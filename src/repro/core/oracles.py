"""Oracles: predicates advising leaving processes when exit is safe.

Foreback et al. [15] proved no distributed algorithm in this model can
decide when a process may safely leave — hence oracles. The paper
restricts attention to oracles of the form ``O : PG × P → {true, false}``
(a function of the current process graph of relevant processes and the
calling process) and introduces:

    **SINGLE** — true for u iff u has edges with at most one other
    relevant process.

If SINGLE(u) holds, removing u and its incident edges cannot disconnect
relevant processes: at most one relevant process loses edges, and it only
loses edges to u. The paper picks SINGLE "for its simplicity, since we
expect it to be easily implementable via timeouts in practice".

Alongside the exact oracle this module ships the ablation variants used
by experiment E11:

* :class:`AlwaysOracle` / :class:`NeverOracle` — the trivial bounds; ALWAYS
  demonstrates *why* an oracle is needed (it admits unsafe exits that can
  disconnect the overlay), NEVER demonstrates that liveness genuinely
  depends on the oracle firing.
* :class:`TimeoutSingleOracle` — a local approximation of SINGLE in the
  spirit of the paper's "implementable via timeouts" remark: it only sees
  *explicit* edges and the caller's own channel, i.e. it misses references
  to the caller that are still in flight inside other processes' channels.
  The experiment measures how often that blind spot would have mattered.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = [
    "SingleOracle",
    "AlwaysOracle",
    "NeverOracle",
    "TimeoutSingleOracle",
    "NoIncomingOracle",
    "ORACLES",
]


class SingleOracle:
    """The exact SINGLE oracle of Section 1.3.

    ``SINGLE(u)`` is true iff, in the current process graph, u has edges
    (in either direction, explicit or implicit) with at most one other
    *relevant* process. Hibernating and gone processes do not count.
    """

    name = "single"

    def __call__(self, engine: Engine, pid: int) -> bool:
        # engine.partner_pids implements exactly this predicate's partner
        # set. In incremental graph mode it is an O(deg) read of the live
        # partner index; in rebuild mode the limit stops the legacy scan
        # as soon as a second partner is certain.
        return len(engine.partner_pids(pid, limit=1)) <= 1

    def __repr__(self) -> str:
        return "SingleOracle()"


class AlwaysOracle:
    """Constant true — the unsafe ablation (E11).

    A leaving process exits as soon as its neighbourhood variable empties,
    regardless of in-flight references; disconnection becomes possible and
    the experiment counts how often it happens.
    """

    name = "always"

    def __call__(self, engine: Engine, pid: int) -> bool:
        return True

    def __repr__(self) -> str:
        return "AlwaysOracle()"


class NeverOracle:
    """Constant false — leaving processes can never exit.

    Shows the protocol's liveness is genuinely oracle-dependent: with
    NEVER, safety still holds but legitimacy is unreachable (leaving
    processes drain their neighbourhoods and then wait forever).
    """

    name = "never"

    def __call__(self, engine: Engine, pid: int) -> bool:
        return False

    def __repr__(self) -> str:
        return "NeverOracle()"


class TimeoutSingleOracle:
    """A locally-implementable approximation of SINGLE.

    Sees: the caller's stored references, other relevant processes'
    *stored* references to the caller, and the caller's own channel.
    Misses: references to the caller travelling in *other* processes'
    channels (implicit edges elsewhere) — exactly the information a
    timeout-based implementation cannot observe without waiting for
    worst-case message delays.

    With ``grace`` > 0 the oracle additionally requires that the caller's
    situation looked SINGLE for `grace` consecutive queries, modelling the
    timeout window; longer grace windows shrink (but cannot close) the
    unsafe gap, which is the E11 ablation's measured trade-off.
    """

    name = "timeout_single"

    def __init__(self, grace: int = 0) -> None:
        if grace < 0:
            raise ValueError("grace must be >= 0")
        self.grace = grace
        self._streak: dict[int, int] = {}

    def _locally_single(self, engine: Engine, pid: int) -> bool:
        snap = engine.snapshot()
        if pid not in snap:
            return True
        relevant = snap.relevant()
        partners: set[int] = set()
        # Outgoing edges are all locally visible: stored references plus
        # references inside the caller's own channel.
        for e in snap.out_edges(pid):
            if e.dst != pid and e.dst in relevant:
                partners.add(e.dst)
        # Incoming: only *explicit* edges (another process stores our ref,
        # observable by probing). Implicit in-edges — references to the
        # caller in other processes' channels — are the blind spot.
        for e in snap.in_edges(pid):
            if e.src != pid and e.src in relevant and e.kind.value == "explicit":
                partners.add(e.src)
        return len(partners) <= 1

    def __call__(self, engine: Engine, pid: int) -> bool:
        if self._locally_single(engine, pid):
            self._streak[pid] = self._streak.get(pid, 0) + 1
        else:
            self._streak[pid] = 0
        return self._streak[pid] > self.grace

    def __repr__(self) -> str:
        return f"TimeoutSingleOracle(grace={self.grace})"


class NoIncomingOracle:
    """NIDEC-style oracle (after Foreback et al. [15]): true for u iff no
    other relevant process has an edge *to* u — nobody stores or carries
    u's reference — **and u's own channel is empty**.

    The channel condition is essential: a staying process that sheds a
    leaving neighbour answers with a *reversal*, handing its own reference
    back — that reference sits in u's channel as an outgoing edge of u,
    which a pure no-incoming check would ignore. Exiting with it pending
    destroys the edge and can disconnect staying processes (our baseline
    tests reproduce exactly this race when the condition is dropped).
    SINGLE avoids the issue by construction because it counts edges in
    *both* directions.

    Unlike SINGLE, NoIncoming lets a leaving list node exit while still
    holding its two (bridged) list neighbours. On its own it still does
    not guarantee safety — removing u removes u's out-edges, which may be
    the only path between its neighbours — the baseline's same-action
    bridging discipline supplies that missing half, which is exactly why
    the paper's topology-agnostic SINGLE protocol is the more broadly
    applicable design.
    """

    name = "no_incoming"

    def __call__(self, engine: Engine, pid: int) -> bool:
        if len(engine.channels[pid]):
            return False
        snap = engine.snapshot()
        if pid not in snap:
            return True
        relevant = snap.relevant()
        for e in snap.in_edges(pid):
            if e.src != pid and e.src in relevant:
                return False
        return True

    def __repr__(self) -> str:
        return "NoIncomingOracle()"


#: Registry for experiment sweeps.
ORACLES = {
    "single": SingleOracle,
    "always": AlwaysOracle,
    "never": NeverOracle,
    "timeout_single": TimeoutSingleOracle,
    "no_incoming": NoIncomingOracle,
}
