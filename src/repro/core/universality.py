"""Theorem 1 made constructive: primitive schedules from any G to any G′.

The paper proves Introduction, Delegation, Fusion and Reversal *universal*:
for any weakly connected graphs ``G = (V, E)`` and ``G′ = (V, E′)`` there
is a sequence of primitives transforming G into G′. The proof is
constructive and this module implements it verbatim as a *planner* that
emits a certified :class:`~repro.core.primitives.PrimitiveOp` schedule:

**Phase A — clique.** Every process repeatedly introduces all of its
neighbours to each other (including self-introduction). Distances halve
each round, so O(log n) rounds suffice — :func:`rounds_to_clique` measures
exactly this quantity for experiment E3.

**Phase B — down to the bidirected extension G″ of G′.** For every edge
``(u, w)`` not in E″: forward w's reference along a shortest u→w path of
G″ by repeated Delegation, and Fuse the arriving duplicate into the
existing E″ edge at the last hop. G″ is strongly connected (it is the
bidirected extension of a weakly connected graph), so the path exists.

**Phase C — from G″ to G′.** Every edge in E″ \\ E′ is Reversed onto its
antiparallel partner and the duplicate Fused away.

Corollary 1 (weak universality of Introduction/Delegation/Fusion alone,
for strongly connected targets) falls out by running Phase B against G′
itself and skipping Phase C — :func:`plan_weak_transformation`.

Theorem 2 (each primitive is *necessary*) is reproduced two ways:

* :data:`NECESSITY_WITNESSES` — the four concrete (G, G′) instances from
  the paper's proof, each annotated with the invariant that every schedule
  avoiding the dropped primitive preserves and that G′ violates;
* :func:`restricted_reachable` — bounded exhaustive search over the
  restricted calculus, which verifies unreachability outright on the
  small witness instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.graphs.connectivity import bfs_shortest_path, is_weakly_connected
from repro.core.primitives import Primitive, PrimitiveGraph, PrimitiveOp

__all__ = [
    "TransformationPlan",
    "plan_transformation",
    "plan_weak_transformation",
    "rounds_to_clique",
    "build_clique",
    "bidirected_extension",
    "NecessityWitness",
    "NECESSITY_WITNESSES",
    "restricted_reachable",
    "enumerate_ops",
]

EdgeSet = frozenset[tuple[int, int]]


# --------------------------------------------------------------------------- helpers


def _validate_instance(
    nodes: Sequence[int],
    initial: Iterable[tuple[int, int]],
    target: Iterable[tuple[int, int]],
) -> tuple[set[int], list[tuple[int, int]], EdgeSet]:
    node_set = set(nodes)
    init_edges = list(initial)
    target_edges = frozenset(target)
    for name, edges in (("initial", init_edges), ("target", target_edges)):
        for a, b in edges:
            if a not in node_set or b not in node_set:
                raise ConfigurationError(f"{name} edge ({a}, {b}) leaves the node set")
            if a == b:
                raise ConfigurationError(
                    f"{name} graph contains self-loop ({a}, {a}); the primitives "
                    "cannot remove single self-loop copies (u, v, w must be "
                    "pairwise distinct), so Theorem 1 instances are loop-free"
                )

    def _adj(edges: Iterable[tuple[int, int]]) -> dict[int, set[int]]:
        adj: dict[int, set[int]] = {n: set() for n in node_set}
        for a, b in edges:
            adj[a].add(b)
            adj[b].add(a)
        return adj

    if len(node_set) > 1:
        if not is_weakly_connected(_adj(init_edges)):
            raise ConfigurationError("initial graph must be weakly connected")
        if not is_weakly_connected(_adj(target_edges)):
            raise ConfigurationError("target graph must be weakly connected")
    return node_set, init_edges, target_edges


def bidirected_extension(edges: Iterable[tuple[int, int]]) -> EdgeSet:
    """E″: both orientations of every target edge (the proof's G″)."""
    out: set[tuple[int, int]] = set()
    for a, b in edges:
        out.add((a, b))
        out.add((b, a))
    return frozenset(out)


def _directed_adjacency(
    nodes: Iterable[int], edges: Iterable[tuple[int, int]]
) -> dict[int, list[int]]:
    adj: dict[int, list[int]] = {n: [] for n in nodes}
    for a, b in edges:
        adj[a].append(b)
    return adj


# --------------------------------------------------------------------------- phases


def build_clique(graph: PrimitiveGraph) -> int:
    """Phase A: introduction rounds until the graph is a complete digraph.

    Each round every node introduces each of its out-neighbours to every
    other (skipping pairs already adjacent, so no duplicates accumulate)
    and self-introduces to out-neighbours lacking the reverse edge.
    Returns the number of rounds — the quantity Theorem 1 bounds by
    O(log n) ("distances between the nodes are essentially cut in half in
    each round").
    """

    nodes = sorted(graph.nodes)
    n = len(nodes)
    want = n * (n - 1)
    rounds = 0
    while len(graph.simple_edges()) < want:
        rounds += 1
        # Synchronous-round semantics: every process introduces based on
        # the neighbourhood it had at the *start* of the round (messages
        # sent in a round are received in the next). Without the snapshot
        # a single sweep would cascade transitively and always finish in
        # one "round", invalidating the O(log n) measurement.
        snapshot = {u: sorted(graph.out_neighbours(u) - {u}) for u in nodes}
        progressed = False
        for u in nodes:
            for v in snapshot[u]:
                if not graph.has_edge(v, u):
                    graph.self_introduce(u, v)
                    progressed = True
                for w in snapshot[u]:
                    if v != w and not graph.has_edge(v, w):
                        graph.introduce(u, v, w)
                        progressed = True
        if not progressed:
            raise ConfigurationError(
                "clique construction stalled; initial graph was not weakly connected"
            )
    return rounds


def _dedupe(graph: PrimitiveGraph) -> None:
    """Fuse every parallel duplicate down to multiplicity one."""
    for (a, b) in list(graph.simple_edges()):
        while graph.multiplicity(a, b) > 1:
            graph.fuse(a, b)


def _reduce_to(graph: PrimitiveGraph, goal: EdgeSet) -> None:
    """Phase B: eliminate every edge outside *goal* by delegation routing.

    *goal* must be strongly connected and a subset of the current simple
    edges (both hold for G″ inside the Phase-A clique, and for a strongly
    connected G′ in the weak-universality variant).
    """

    adjacency = {n: sorted({b for (a, b) in goal if a == n}) for n in graph.nodes}
    while True:
        offenders = sorted(
            (a, b) for (a, b) in graph.simple_edges() if (a, b) not in goal
        )
        if not offenders:
            return
        u, w = offenders[0]
        path = bfs_shortest_path(adjacency, u, w)
        if path is None:  # pragma: no cover - goal is strongly connected
            raise ConfigurationError(f"no path {u} → {w} in goal graph")
        cur = u
        for nxt in path[1:]:
            if nxt == w:
                # cur is a goal-neighbour of w: fuse the arriving duplicate.
                graph.fuse(cur, w)
                break
            graph.delegate(cur, nxt, w)
            cur = nxt


def _orient(graph: PrimitiveGraph, target: EdgeSet) -> None:
    """Phase C: reverse the E″ \\ E′ edges onto their antiparallel partners."""
    for (a, b) in sorted(bidirected_extension(target)):
        if (a, b) not in target and graph.has_edge(a, b):
            graph.reverse(a, b)  # creates a second copy of (b, a) ∈ E′
            graph.fuse(b, a)


# --------------------------------------------------------------------------- planner


@dataclass(frozen=True)
class TransformationPlan:
    """A certified schedule transforming *initial* into *target*.

    ``schedule`` replayed on a fresh ``PrimitiveGraph(nodes, initial)``
    yields exactly ``target`` (the planner verifies this before
    returning). ``clique_rounds`` is the Phase-A round count.
    """

    nodes: tuple[int, ...]
    initial: tuple[tuple[int, int], ...]
    target: EdgeSet
    schedule: tuple[PrimitiveOp, ...]
    clique_rounds: int

    def __len__(self) -> int:
        return len(self.schedule)

    def counts(self) -> dict[str, int]:
        """Number of applications per primitive."""
        out: dict[str, int] = {p.value: 0 for p in Primitive}
        for op in self.schedule:
            out[op.primitive.value] += 1
        return out

    def replay(self, check_connectivity: bool = False) -> PrimitiveGraph:
        """Re-execute the schedule from the initial graph and return the result."""
        graph = PrimitiveGraph(
            self.nodes, self.initial, check_connectivity=check_connectivity
        )
        for op in self.schedule:
            graph.apply(op)
        return graph


def plan_transformation(
    nodes: Sequence[int],
    initial: Iterable[tuple[int, int]],
    target: Iterable[tuple[int, int]],
) -> TransformationPlan:
    """Theorem 1's constructive proof: a schedule from *initial* to *target*.

    Both graphs must be weakly connected and loop-free over the same node
    set. The returned plan is verified: its replay reproduces *target*
    exactly (as a simple edge set with all multiplicities one).
    """

    node_set, init_edges, target_edges = _validate_instance(nodes, initial, target)
    graph = PrimitiveGraph(node_set, init_edges)
    _dedupe(graph)  # collapse adversarial initial multi-edges first
    rounds = build_clique(graph) if len(node_set) > 1 else 0
    goal = bidirected_extension(target_edges)
    _reduce_to(graph, goal)
    _orient(graph, target_edges)
    if graph.simple_edges() != target_edges or any(
        graph.multiplicity(a, b) != 1 for (a, b) in target_edges
    ):  # pragma: no cover - planner invariant
        raise ConfigurationError("planner failed to reach the target graph")
    return TransformationPlan(
        nodes=tuple(sorted(node_set)),
        initial=tuple(init_edges),
        target=target_edges,
        schedule=tuple(graph.log),
        clique_rounds=rounds,
    )


def plan_weak_transformation(
    nodes: Sequence[int],
    initial: Iterable[tuple[int, int]],
    target: Iterable[tuple[int, int]],
) -> TransformationPlan:
    """Corollary 1: Introduction + Delegation + Fusion suffice when the
    target is strongly connected (no Reversal in the schedule)."""

    from repro.graphs.connectivity import is_strongly_connected

    node_set, init_edges, target_edges = _validate_instance(nodes, initial, target)
    adjacency = {
        n: [b for (a, b) in target_edges if a == n] for n in node_set
    }
    if len(node_set) > 1 and not is_strongly_connected(adjacency):
        raise ConfigurationError(
            "weak universality requires a strongly connected target (Corollary 1)"
        )
    graph = PrimitiveGraph(node_set, init_edges)
    _dedupe(graph)
    rounds = build_clique(graph) if len(node_set) > 1 else 0
    _reduce_to(graph, target_edges)
    plan = TransformationPlan(
        nodes=tuple(sorted(node_set)),
        initial=tuple(init_edges),
        target=target_edges,
        schedule=tuple(graph.log),
        clique_rounds=rounds,
    )
    assert all(
        op.primitive is not Primitive.REVERSAL for op in plan.schedule
    ), "weak plan must not use Reversal"
    return plan


def rounds_to_clique(
    nodes: Sequence[int], edges: Iterable[tuple[int, int]]
) -> int:
    """Introduction rounds until *edges* becomes the complete digraph (E3)."""
    graph = PrimitiveGraph(nodes, edges)
    _dedupe(graph)
    return build_clique(graph)


# --------------------------------------------------------------------------- Theorem 2


@dataclass(frozen=True)
class NecessityWitness:
    """A (G, G′) instance unreachable without one primitive.

    ``invariant`` maps a :class:`PrimitiveGraph` to a comparable summary
    that every schedule avoiding ``dropped`` preserves monotonically (see
    ``invariant_kind``) and whose value on G′ contradicts its value on G.
    """

    dropped: Primitive
    nodes: tuple[int, ...]
    initial: tuple[tuple[int, int], ...]
    target: tuple[tuple[int, int], ...]
    invariant_kind: str  # "non-increasing" | "non-decreasing" | "superset"
    invariant: Callable[[PrimitiveGraph], object]
    reason: str


def _edge_copies(g: PrimitiveGraph) -> int:
    return g.edge_count()


def _undirected_pairs(g: PrimitiveGraph) -> frozenset[frozenset[int]]:
    return frozenset(
        frozenset((a, b)) for (a, b) in g.simple_edges() if a != b
    )


def _has_uv(g: PrimitiveGraph) -> bool:
    return g.has_edge(0, 1)


#: The four proof instances of Theorem 2.
NECESSITY_WITNESSES: dict[str, NecessityWitness] = {
    "introduction": NecessityWitness(
        dropped=Primitive.INTRODUCTION,
        nodes=(0, 1, 2),
        initial=((0, 1), (1, 2)),
        target=((0, 1), (1, 2), (2, 0)),
        invariant_kind="non-increasing",
        invariant=_edge_copies,
        reason=(
            "Introduction is the only primitive that creates new edges; "
            "without it the total number of edge copies never increases, so "
            "a target with more edges is unreachable."
        ),
    ),
    "fusion": NecessityWitness(
        dropped=Primitive.FUSION,
        nodes=(0, 1),
        initial=((0, 1), (0, 1)),
        target=((0, 1),),
        invariant_kind="non-decreasing",
        invariant=_edge_copies,
        reason=(
            "Fusion is the only primitive that reduces the overall number of "
            "edges; without it the copy count never decreases, so a target "
            "with fewer edge copies is unreachable."
        ),
    ),
    "delegation": NecessityWitness(
        dropped=Primitive.DELEGATION,
        nodes=(0, 1, 2),
        initial=((0, 1), (1, 2), (2, 0)),
        target=((0, 1), (1, 2), (2, 1)),
        invariant_kind="superset",
        invariant=_undirected_pairs,
        reason=(
            "With only Introduction, Fusion and Reversal, the set of "
            "undirected adjacencies never shrinks (fusion needs a surviving "
            "duplicate, reversal keeps the pair adjacent), so two specific "
            "processes can never be locally disconnected: a target missing "
            "an existing undirected adjacency is unreachable."
        ),
    ),
    "reversal": NecessityWitness(
        dropped=Primitive.REVERSAL,
        nodes=(0, 1),
        initial=((0, 1),),
        target=((1, 0),),
        invariant_kind="non-decreasing",
        invariant=_has_uv,
        reason=(
            "On two processes u, v with the single edge (u, v): delegation "
            "needs three distinct processes, fusion needs a duplicate, and "
            "introduction only adds edges — so (u, v) persists in every "
            "reachable graph, while the target consists solely of (v, u)."
        ),
    ),
}


# ------------------------------------------------------------------ bounded search


def enumerate_ops(
    graph: PrimitiveGraph,
    allowed: frozenset[Primitive],
    max_multiplicity: int = 2,
    max_total: int | None = None,
) -> list[PrimitiveOp]:
    """All primitive applications currently enabled on *graph*, bounded.

    Operations that would push any pair's multiplicity beyond
    *max_multiplicity*, or the total copy count beyond *max_total*, are
    pruned. This keeps the search space finite (reversal can otherwise
    shuttle copies between orientations while introduction keeps refilling
    them, making the raw space infinite). The bounds make the search a
    *bounded-reachability* check: "target not reached" within the bounds
    is demonstrative, while the rigorous unreachability argument is the
    invariant one (see :data:`NECESSITY_WITNESSES`) — the test-suite
    exercises both.
    """

    ops: list[PrimitiveOp] = []
    nodes = sorted(graph.nodes)
    total = graph.edge_count()
    can_add = max_total is None or total < max_total
    for u in nodes:
        outs = sorted(graph.out_neighbours(u) - {u})
        for v in outs:
            if (
                Primitive.SELF_INTRODUCTION in allowed
                and can_add
                and graph.multiplicity(v, u) < max_multiplicity
            ):
                ops.append(PrimitiveOp(Primitive.SELF_INTRODUCTION, u, v))
            if Primitive.FUSION in allowed and graph.multiplicity(u, v) >= 2:
                ops.append(PrimitiveOp(Primitive.FUSION, u, v))
            if (
                Primitive.REVERSAL in allowed
                and graph.multiplicity(v, u) < max_multiplicity
            ):
                ops.append(PrimitiveOp(Primitive.REVERSAL, u, v))
            for w in outs:
                if v == w:
                    continue
                if (
                    Primitive.INTRODUCTION in allowed
                    and can_add
                    and graph.multiplicity(v, w) < max_multiplicity
                ):
                    ops.append(PrimitiveOp(Primitive.INTRODUCTION, u, v, w))
                if (
                    Primitive.DELEGATION in allowed
                    and graph.multiplicity(v, w) < max_multiplicity
                ):
                    ops.append(PrimitiveOp(Primitive.DELEGATION, u, v, w))
    return ops


def restricted_reachable(
    nodes: Sequence[int],
    initial: Iterable[tuple[int, int]],
    allowed: frozenset[Primitive],
    *,
    max_multiplicity: int = 2,
    max_total: int | None = None,
    max_states: int = 200_000,
) -> set[frozenset]:
    """Bounded exhaustive reachability over the restricted primitive calculus.

    Breadth-first over graph states (canonicalized by multiplicity map),
    bounded by per-pair multiplicity, total copy count (default: initial
    count + 4) and *max_states*. Returns the set of reachable state keys;
    used by the Theorem 2 experiments to demonstrate outright that the
    witness targets are unreachable on their (tiny) instances within
    generous bounds — the invariant argument provides the unbounded proof.
    """

    start = PrimitiveGraph(nodes, initial)
    if max_total is None:
        max_total = start.edge_count() + 4
    seen: set[frozenset] = {start.state_key()}
    frontier = [start]
    while frontier:
        if len(seen) > max_states:
            raise ConfigurationError(
                f"state space exceeded max_states={max_states}; "
                "tighten max_multiplicity or shrink the instance"
            )
        nxt: list[PrimitiveGraph] = []
        for g in frontier:
            for op in enumerate_ops(g, allowed, max_multiplicity, max_total):
                clone = g.copy()
                clone.apply(op)
                key = clone.state_key()
                if key not in seen:
                    seen.add(key)
                    nxt.append(clone)
        frontier = nxt
    return seen
