"""The potential function Φ (Lemma 3) and the legitimacy predicates (§1.2).

**Potential.** ``Φ_t`` is the amount of invalid information in the system:
the number of edges ``(x, y)`` — explicit or implicit — whose attached
belief about ``mode(y)`` is wrong. The paper's liveness argument rests on
two facts this module lets experiments verify directly:

* Φ never increases (invalid information is never copied: the only places
  a belief about a third party is forwarded, the forwarder simultaneously
  drops its own copy), and
* Φ eventually reaches 0, after which leaving processes drain and exit.

**Legitimacy** (Section 1.2). A system state is legitimate iff

  (i)   every staying process is awake,
  (ii)  every leaving process is either hibernating or gone,
  (iii) for each weakly connected component of the *initial* process
        graph, the staying processes in that component still form a
        weakly connected component.

For (iii) we check connectivity of each component's staying set in the
subgraph induced on staying processes: paths through gone processes do
not exist, and paths through hibernating processes are useless (a
hibernating process never acts again, so staying processes "connected"
only through it could never exchange another message).

The FDP asks for legitimacy with only ``exit`` available (so (ii) means
*gone*); the FSP with only ``sleep`` (so (ii) means *hibernating*).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graphs.snapshot import Edge
from repro.sim.states import Mode, PState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

__all__ = [
    "potential",
    "invalid_edges",
    "is_valid_state",
    "staying_connected_per_component",
    "staying_connected_induced",
    "relevant_connected_per_component",
    "fdp_legitimate",
    "fsp_legitimate",
    "all_leaving_gone",
    "all_leaving_hibernating",
]


def potential(engine: Engine) -> int:
    """Φ: the number of edges carrying invalid mode information.

    An O(1) counter read in the engine's incremental graph mode (the
    live graph buckets incident beliefs per target pid); a full edge
    scan only in rebuild mode.
    """
    return engine.potential()


def invalid_edges(engine: Engine) -> list[Edge]:
    """The edges counted by Φ (for diagnostics and targeted tests)."""
    snap = engine.snapshot()
    return list(snap.iter_invalid_edges(engine.actual_mode))


def is_valid_state(engine: Engine) -> bool:
    """Whether no relevant process holds or is owed invalid information."""
    return engine.potential() == 0


# ---------------------------------------------------------------- legitimacy parts


def _staying_pids(engine: Engine) -> frozenset[int]:
    return frozenset(
        pid for pid, p in engine.processes.items() if p.mode is Mode.STAYING
    )


def all_staying_awake(engine: Engine) -> bool:
    """Condition (i): every staying process is awake."""
    return all(
        p.state is PState.AWAKE
        for p in engine.processes.values()
        if p.mode is Mode.STAYING
    )


def all_leaving_gone(engine: Engine) -> bool:
    """FDP reading of condition (ii): every leaving process is gone."""
    return all(
        p.state is PState.GONE
        for p in engine.processes.values()
        if p.mode is Mode.LEAVING
    )


def all_leaving_hibernating(engine: Engine) -> bool:
    """FSP reading of condition (ii): every leaving process is hibernating
    (gone also accepted, matching the general definition)."""
    snap = engine.snapshot()
    hibernating = snap.hibernating()
    for pid, p in engine.processes.items():
        if p.mode is not Mode.LEAVING:
            continue
        if p.state is PState.GONE:
            continue
        if pid not in hibernating:
            return False
    return True


def staying_connected_per_component(engine: Engine) -> bool:
    """Condition (iii): per initial component, the staying processes still
    lie in one weakly connected component of the current process graph.

    This is the paper's reading: PG includes every non-gone process, so
    paths through hibernating (leaving, permanently asleep) processes
    count. In FDP-legitimate states all leaving processes are gone and
    this coincides with connectivity of the staying-induced subgraph; in
    FSP-legitimate states a hibernating process may serve as the joint
    holding two staying processes' references together. Open-system
    runs extend each component with its mid-run admissions — a joiner
    attaches by edge to exactly one component, so paths through any
    non-gone admitted process are legitimate (and exact: components
    never merge, so an admitted bridge between *different* components
    cannot exist). Use :func:`staying_connected_induced` for the
    stricter variant.
    """
    snap = engine.snapshot()
    staying = _staying_pids(engine)
    admitted = (
        frozenset(
            pid
            for pid, p in engine.processes.items()
            if p.state is not PState.GONE
        )
        - engine.initial_pids
    )
    for comp in engine.initial_components:
        members = frozenset(comp) & staying
        if len(members) <= 1:
            continue
        if not snap.is_weakly_connected_within(
            members, frozenset(comp) | admitted
        ):
            return False
    return True


def staying_connected_induced(engine: Engine) -> bool:
    """Strict variant of condition (iii): connectivity of each component's
    staying processes in the subgraph induced on staying processes only
    (no paths through hibernating processes). Reported by the analysis
    layer so experiments can show how often the two readings differ."""
    snap = engine.snapshot()
    staying = _staying_pids(engine)
    sub = snap.filter_nodes(lambda n: n.pid in staying)
    for comp in engine.initial_components:
        members = frozenset(comp) & staying
        if len(members) <= 1:
            continue
        if not sub.is_weakly_connected(members):
            return False
    return True


def relevant_connected_per_component(engine: Engine) -> bool:
    """Lemma 2's running invariant: per initial component, the currently
    relevant processes remain weakly connected (paths through any relevant
    process count).

    Served by the engine's live graph in incremental mode — no snapshot
    is built, making this safe to evaluate in per-step loops.
    """
    relevant = engine.relevant_pids()
    for comp in engine.initial_components:
        members = frozenset(comp) & relevant
        if len(members) <= 1:
            continue
        if not engine.members_weakly_connected(members):
            return False
    return True


# ---------------------------------------------------------------- full predicates


def fdp_legitimate(engine: Engine) -> bool:
    """Legitimacy for the Finite Departure Problem: (i) ∧ (ii:gone) ∧ (iii)."""
    return (
        all_staying_awake(engine)
        and all_leaving_gone(engine)
        and staying_connected_per_component(engine)
    )


def fsp_legitimate(engine: Engine) -> bool:
    """Legitimacy for the Finite Sleep Problem: (i) ∧ (ii:hibernating) ∧ (iii)."""
    return (
        all_staying_awake(engine)
        and all_leaving_hibernating(engine)
        and staying_connected_per_component(engine)
    )
