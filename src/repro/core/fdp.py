"""The self-stabilizing FDP protocol of Section 3 (Algorithms 1–3).

:class:`FDPProcess` is a line-by-line transcription of the paper's three
actions — ``timeout``, ``present(v)`` and ``forward(v)`` — annotated with
the pseudocode line numbers and the primitive each branch realizes
(♦ (self-)introduction, ♥ delegation, ♠ fusion, ♣ reversal). Because
every branch is one of the four primitives (plus the oracle-guarded
``exit``), Lemma 2's safety follows from Lemma 1, and the test-suite
re-verifies it mechanically with connectivity monitors.

Protocol state per process u:

* ``u.N`` — the neighbourhood: references stored in local memory, each
  with u's belief about the referenced process's mode (``u.mode(v)``);
* ``u.anchor`` — one additional reference slot, used only by leaving
  processes: a process u believes to be staying, to which u delegates
  every reference it wants to get rid of.

Transcription notes (faithfulness decisions, also recorded in DESIGN.md):

1. **Indentation of Algorithm 1, lines 8–14.** The paper's layout is
   ambiguous about which ``if`` the two ``else`` branches attach to. We
   adopt the only liveness-consistent reading: when a leaving process's
   ``N`` is non-empty it *always* drains ``N`` into ``forward`` messages
   to itself (the forward action then delegates each reference to the
   anchor, or adopts the first staying one as anchor); the
   ``present(u)``-to-anchor verification runs when ``N`` is empty but
   ``SINGLE`` does not hold yet. Under the alternative parse, a leaving
   process holding both an anchor and neighbours would never drain its
   neighbourhood and could never exit — contradicting Lemma 3.

2. **Self-references.** The primitives assume u, v, w pairwise distinct
   (self-introduction excepted). A process receiving its own reference
   discards it — fusing it with its implicit self-knowledge — which
   cannot affect connectivity (a self-loop connects nothing).

3. **Missing mode information.** An adversarial initial state may contain
   messages whose piggybacked mode is absent. The protocol interprets an
   unknown mode as *staying*; correspondingly Φ counts an unknown belief
   about a leaving process as invalid information, keeping Lemma 3's
   monotonicity intact (see :mod:`repro.core.potential`).

4. **Knowledge updates.** When a message carrying ``RefInfo(v, m)`` is
   processed, the action body branches on the *incoming* knowledge ``m``;
   stored beliefs change only where the pseudocode stores or removes a
   reference (the ``N := N ∪ {v}`` insertions store ``m``; the removal
   and anchor-purge branches delete). There is deliberately no blanket
   "update stored belief to m" step: overwriting a valid stored belief
   with invalid incoming information while also forwarding that
   information would *copy* invalid information and break the
   monotonicity of Φ that Lemma 3's proof rests on (the per-step
   :class:`~repro.sim.monitors.PotentialMonitor` catches exactly this
   if reintroduced).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.sim.messages import RefInfo
from repro.sim.process import ActionContext, Process
from repro.sim.refs import Ref, RefCell, RefMap
from repro.sim.states import Mode

__all__ = ["FDPProcess", "normalize_belief"]


def normalize_belief(mode: Mode | None) -> Mode:
    """Interpret a piggybacked mode claim; unknown counts as staying."""
    return mode if mode is not None else Mode.STAYING


class FDPProcess(Process):
    """One process running the departure protocol of Algorithms 1–3."""

    #: All stored refs live in tracked containers (``N`` is a
    #: :class:`~repro.sim.refs.RefMap`, the anchor a ``RefCell``), so the
    #: engine drains write-through deltas instead of fingerprinting.
    ref_tracking = True

    def __init__(
        self,
        pid: int,
        mode: Mode,
        *,
        neighbors: Mapping[Ref, Mode] | Iterable[Ref] = (),
        anchor: Ref | None = None,
        anchor_belief: Mode | None = None,
    ) -> None:
        super().__init__(pid, mode)
        #: u.N — stored references with mode beliefs (u.mode(v)).
        self.N: RefMap = RefMap(self._ref_log)
        if isinstance(neighbors, Mapping):
            for ref, belief in neighbors.items():
                self._add_neighbor(ref, belief)
        else:
            for ref in neighbors:
                self._add_neighbor(ref, Mode.STAYING)
        #: u.anchor — the leaving process's escape hatch (⊥ encoded as None).
        self._anchor_cell = RefCell(self._ref_log)
        if anchor is not None and anchor != self.self_ref:
            self.anchor = anchor
            self.anchor_belief = normalize_belief(anchor_belief)

    # The anchor slot reads/writes through the tracked cell so every
    # assignment site (protocol code, scenario corruption, tests) logs
    # its edge delta without changing the ``u.anchor`` surface syntax.

    @property
    def anchor(self) -> Ref | None:
        return self._anchor_cell.ref

    @anchor.setter
    def anchor(self, ref: Ref | None) -> None:
        self._anchor_cell.set_ref(ref)

    @property
    def anchor_belief(self) -> Mode | None:
        return self._anchor_cell.belief

    @anchor_belief.setter
    def anchor_belief(self, belief: Mode | None) -> None:
        self._anchor_cell.set_belief(belief)

    # ------------------------------------------------------------------ state

    def _add_neighbor(self, ref: Ref, belief: Mode | None) -> None:
        if ref != self.self_ref:  # a process implicitly knows itself
            self.N[ref] = normalize_belief(belief)

    def stored_refs(self) -> Iterator[RefInfo]:
        """Explicit edges: the neighbourhood plus the anchor slot."""
        for ref, belief in self.N.items():
            yield RefInfo(ref, belief)
        if self.anchor is not None:
            yield RefInfo(self.anchor, self.anchor_belief)

    def describe_vars(self) -> dict:
        return {
            "N": {repr(r): b.value for r, b in self.N.items()},
            "anchor": repr(self.anchor) if self.anchor is not None else None,
            "anchor_belief": (
                self.anchor_belief.value if self.anchor_belief is not None else None
            ),
        }

    def _drop_stale_anchor(self, v: Ref, m: Mode) -> None:
        """Algorithm 2/3 lines 1–2: an anchor now known to be leaving is
        no anchor (anchors must be staying)."""
        if self.anchor is not None and v == self.anchor and m is Mode.LEAVING:
            self.anchor = None
            self.anchor_belief = None

    def _clear_anchor_to_self(self, ctx: ActionContext) -> None:
        """Turn the anchor slot into a ``present`` message to ourselves
        (explicit edge becomes implicit; handled by on_present later)."""
        assert self.anchor is not None
        ctx.send(self.self_ref, "present", RefInfo(self.anchor, self.anchor_belief))
        self.anchor = None
        self.anchor_belief = None

    # ------------------------------------------------------------------ hooks

    def _departure_ready(self, ctx: ActionContext) -> None:
        """N is empty and SINGLE holds: leave. (Overridden by FSP.)"""
        ctx.exit()  # Alg. 1 line 7

    def _consult_oracle(self, ctx: ActionContext) -> bool:
        """Alg. 1 line 6. (Overridden by FSP, which needs no oracle.)"""
        return ctx.oracle()

    def _present_leaving_leaving(self, ctx: ActionContext, v: Ref, m: Mode) -> None:
        """Algorithm 2 line 5: leaving self receives a leaving reference.

        FDP behaviour: hand our own reference to the other leaving process
        (reversal ♣); the resulting mutual bouncing terminates because
        SINGLE eventually lets one of the pair exit. The FSP variant
        overrides this (see :class:`~repro.core.fsp.FSPProcess`).
        """
        ctx.send(v, "forward", RefInfo(self.self_ref, self.mode))

    def _leaving_ref_no_anchor(self, ctx: ActionContext, v: Ref, m: Mode) -> None:
        """Algorithm 3 line 6: leaving, anchor-less self was *forwarded* a
        leaving reference. FDP behaviour: reversal ♣ (same termination
        argument as above); overridden by the FSP variant."""
        ctx.send(v, "forward", RefInfo(self.self_ref, self.mode))

    # ------------------------------------------------------------------ timeout

    def timeout(self, ctx: ActionContext) -> None:
        """Algorithm 1."""
        # Lines 1–3: purge an anchor believed (possibly from a corrupted
        # initial state) to be leaving.                                  ♦
        if self.anchor is not None and self.anchor_belief is Mode.LEAVING:
            self._clear_anchor_to_self(ctx)

        if self.mode is Mode.LEAVING:  # line 4
            if not self.N:  # line 5
                if self._consult_oracle(ctx):  # line 6: SINGLE(u)
                    self._departure_ready(ctx)  # line 7: exit
                elif self.anchor is not None:  # lines 8–10
                    # Self-introduce to the anchor: verifies we have a
                    # staying anchor (a leaving one answers with its true
                    # mode, triggering the line 1–2 purge).              ♦
                    ctx.send(
                        self.anchor, "present", RefInfo(self.self_ref, self.mode)
                    )
            else:  # lines 11–14: drain the neighbourhood to ourselves.
                for v, belief in self.N.items():
                    # Explicit edge becomes an implicit one we will
                    # delegate on receipt.                                ♦
                    ctx.send(self.self_ref, "forward", RefInfo(v, belief))
                self.N.clear()
        else:  # lines 15–22: staying process
            if self.anchor is not None:  # lines 16–18: staying processes
                self._clear_anchor_to_self(ctx)  # hold no anchor
            for v, belief in list(self.N.items()):  # line 19
                if belief is Mode.LEAVING:  # lines 20–21
                    del self.N[v]  # together with line 22: reversal      ♣
                # Line 22: (self-)introduction to every neighbour —
                # reversal for dropped leaving ones.                 ♦ or ♣
                ctx.send(v, "present", RefInfo(self.self_ref, self.mode))

    # ------------------------------------------------------------------ present

    def on_present(self, ctx: ActionContext, info: RefInfo) -> None:
        """Algorithm 2: a reference v is *introduced* to us."""
        v = info.ref
        if v == self.self_ref:  # transcription note 2
            return
        m = normalize_belief(info.mode)
        self._drop_stale_anchor(v, m)  # lines 1–2                        ♠

        if m is Mode.LEAVING:  # line 3
            if self.mode is Mode.LEAVING:  # lines 4–5
                self._present_leaving_leaving(ctx, v, m)  #                ♣
            else:  # lines 6–9
                if v in self.N:  # lines 7–8: drop the explicit edge too  ♠
                    del self.N[v]
                # Reverse: v gets our reference instead of us keeping v.  ♣
                ctx.send(v, "forward", RefInfo(self.self_ref, self.mode))
        else:  # line 10: v believed staying
            if self.mode is Mode.LEAVING:  # line 11
                if self.anchor is not None:  # lines 12–13
                    # We already have an anchor: give v our reference so
                    # all edges end up pointing at us exactly once.       ♣
                    ctx.send(v, "forward", RefInfo(self.self_ref, self.mode))
                else:  # lines 14–15: adopt v as our anchor
                    self.anchor = v
                    self.anchor_belief = m
            else:  # lines 16–17: staying learns a staying reference
                self.N[v] = m  # fusion if already known                   ♠

    # ------------------------------------------------------------------ forward

    def on_forward(self, ctx: ActionContext, info: RefInfo) -> None:
        """Algorithm 3: a reference v is *delegated* to us."""
        v = info.ref
        if v == self.self_ref:  # transcription note 2
            return
        m = normalize_belief(info.mode)
        self._drop_stale_anchor(v, m)  # lines 1–2                        ♠

        if m is Mode.LEAVING:  # line 3
            if self.mode is Mode.LEAVING:  # line 4
                if self.anchor is None:  # lines 5–6
                    self._leaving_ref_no_anchor(ctx, v, m)  #             ♣
                else:  # lines 7–8: pass v on to our anchor
                    ctx.send(self.anchor, "forward", RefInfo(v, m))  #    ♥
            else:  # lines 9–12: staying
                if v in self.N:  # lines 10–11                            ♠
                    del self.N[v]
                # Reverse the edge back to the leaving process.           ♣
                ctx.send(v, "forward", RefInfo(self.self_ref, self.mode))
        else:  # line 13: v believed staying
            if self.mode is Mode.LEAVING:  # line 14
                if self.anchor is not None:  # lines 15–16
                    ctx.send(self.anchor, "forward", RefInfo(v, m))  #    ♥
                else:  # lines 17–18: adopt v as anchor
                    self.anchor = v
                    self.anchor_belief = m
            else:  # lines 19–20: staying stores the staying reference
                self.N[v] = m  #                                          ♠
