"""The paper's contribution: primitives, oracles, the FDP/FSP protocols,
the potential-function machinery, the universality planner, and the
Section 4 embedding framework."""

from repro.core.fdp import FDPProcess, normalize_belief
from repro.core.fsp import FSPProcess
from repro.core.oracles import (
    ORACLES,
    AlwaysOracle,
    NeverOracle,
    SingleOracle,
    TimeoutSingleOracle,
)
from repro.core.potential import (
    all_leaving_gone,
    all_leaving_hibernating,
    fdp_legitimate,
    fsp_legitimate,
    invalid_edges,
    is_valid_state,
    potential,
    relevant_connected_per_component,
    staying_connected_per_component,
)
from repro.core.primitives import (
    Primitive,
    PrimitiveGraph,
    PrimitiveOp,
    apply_schedule,
)
from repro.core.framework import FrameworkProcess, PendingMessage
from repro.core.oracles import NoIncomingOracle
from repro.core.potential import staying_connected_induced
from repro.core.scenarios import (
    CLEAN,
    HEAVY_CORRUPTION,
    LIGHT_CORRUPTION,
    Corruption,
    build_fdp_engine,
    build_framework_engine,
    build_fsp_engine,
    choose_leaving,
)
from repro.core.universality import (
    NECESSITY_WITNESSES,
    NecessityWitness,
    TransformationPlan,
    bidirected_extension,
    plan_transformation,
    plan_weak_transformation,
    restricted_reachable,
    rounds_to_clique,
)

__all__ = [
    "ORACLES",
    "AlwaysOracle",
    "CLEAN",
    "Corruption",
    "FDPProcess",
    "FSPProcess",
    "HEAVY_CORRUPTION",
    "LIGHT_CORRUPTION",
    "NECESSITY_WITNESSES",
    "NecessityWitness",
    "NeverOracle",
    "Primitive",
    "PrimitiveGraph",
    "PrimitiveOp",
    "SingleOracle",
    "TimeoutSingleOracle",
    "TransformationPlan",
    "all_leaving_gone",
    "all_leaving_hibernating",
    "apply_schedule",
    "bidirected_extension",
    "FrameworkProcess",
    "NoIncomingOracle",
    "PendingMessage",
    "build_fdp_engine",
    "build_framework_engine",
    "build_fsp_engine",
    "staying_connected_induced",
    "choose_leaving",
    "fdp_legitimate",
    "fsp_legitimate",
    "invalid_edges",
    "is_valid_state",
    "normalize_belief",
    "plan_transformation",
    "plan_weak_transformation",
    "potential",
    "relevant_connected_per_component",
    "restricted_reachable",
    "rounds_to_clique",
    "staying_connected_per_component",
]
