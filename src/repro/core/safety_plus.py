"""Beyond connectivity: stronger safety measures (the paper's future work).

The conclusion of the paper: *"In the future we want to investigate
stronger safety conditions for overlay networks than just connectivity."*
This module makes that direction concrete and measurable. Lemma 2
guarantees the staying processes never *disconnect* — but a departure can
still degrade the overlay's *quality*: paths may lengthen (all traffic
that used to flow through the leaver must detour) and individual
processes may be left holding many hand-over references.

Two quantitative safety measures over the staying population:

* **stretch** — the worst-case ratio between current and initial
  shortest-path distances in the staying-induced (undirected) overlay.
  Stretch 1.0 means departures cost nothing topologically; ∞ (reported as
  ``float('inf')``) would mean a disconnection, i.e. a Lemma 2 violation.
* **degree blow-up** — the worst-case growth of a staying process's
  explicit out-degree relative to its initial degree; measures how
  unevenly the leavers' edges were redistributed.

:class:`StretchMonitor` turns a stretch bound into an *enforced* safety
condition in the spirit of Lemma 2's monitor: it raises the moment the
bound is exceeded. Experiment E12 measures how both quantities behave
across topologies — the empirical answer to "how much stronger a safety
condition could the FDP protocol already promise?".
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Mapping
from typing import TYPE_CHECKING

from repro.errors import SafetyViolation
from repro.sim.states import Mode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine, ExecutedStep

__all__ = [
    "staying_distances",
    "stretch",
    "degree_blowup",
    "StretchMonitor",
]


def _staying_adjacency(engine: Engine) -> dict[int, set[int]]:
    """Undirected adjacency of the staying-induced subgraph (all edges)."""
    snap = engine.snapshot()
    staying = frozenset(
        pid for pid, p in engine.processes.items() if p.mode is Mode.STAYING
    )
    return snap.undirected_adjacency(staying)


def staying_distances(engine: Engine) -> dict[tuple[int, int], int]:
    """All-pairs BFS distances over the staying-induced overlay.

    Unreachable pairs are omitted (callers treat them as infinite).
    O(V·(V+E)); the staying populations of the experiments are small.
    """

    adj = _staying_adjacency(engine)
    out: dict[tuple[int, int], int] = {}
    for source in adj:
        dist = {source: 0}
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            for nb in adj[node]:
                if nb not in dist:
                    dist[nb] = dist[node] + 1
                    frontier.append(nb)
        for target, d in dist.items():
            if source != target:
                out[(source, target)] = d
    return out


def stretch(
    engine: Engine,
    baseline: Mapping[tuple[int, int], int],
    pairs: Iterable[tuple[int, int]] | None = None,
) -> float:
    """Worst-case distance stretch relative to *baseline* distances.

    *baseline* is typically :func:`staying_distances` taken at attach
    time. Pairs missing from the current distances (disconnected) yield
    ``inf``; pairs missing from the baseline are skipped (they were
    already unreachable initially).
    """

    current = staying_distances(engine)
    worst = 1.0
    candidates = pairs if pairs is not None else baseline.keys()
    for pair in candidates:
        base = baseline.get(pair)
        if base is None or base == 0:
            continue
        now = current.get(pair)
        if now is None:
            return float("inf")
        worst = max(worst, now / base)
    return worst


def degree_blowup(
    engine: Engine, baseline_degrees: Mapping[int, int]
) -> float:
    """Worst-case growth factor of staying explicit out-degrees.

    Degrees that started at 0 are compared against 1 (absolute growth).
    """

    snap = engine.snapshot()
    staying = {
        pid for pid, p in engine.processes.items() if p.mode is Mode.STAYING
    }
    worst = 1.0
    for pid in staying:
        now = sum(
            1
            for e in snap.out_edges(pid)
            if e.kind.value == "explicit" and e.dst in staying and e.dst != pid
        )
        base = max(1, baseline_degrees.get(pid, 0))
        worst = max(worst, now / base)
    return worst


def staying_out_degrees(engine: Engine) -> dict[int, int]:
    """Explicit staying→staying out-degrees (baseline for degree_blowup)."""
    snap = engine.snapshot()
    staying = {
        pid for pid, p in engine.processes.items() if p.mode is Mode.STAYING
    }
    return {
        pid: sum(
            1
            for e in snap.out_edges(pid)
            if e.kind.value == "explicit" and e.dst in staying and e.dst != pid
        )
        for pid in staying
    }


class StretchMonitor:
    """Enforces a stretch bound as a *stronger* safety condition.

    Registered like any engine monitor; on the first check where the
    staying-overlay stretch exceeds ``bound`` it raises
    :class:`~repro.errors.SafetyViolation`. The baseline distances are
    captured at the first invocation (i.e. over the initial state).

    ``record=True`` keeps the sampled stretch series for analysis (E12
    reports its peak — the transient cost of a departure wave).
    """

    def __init__(
        self, bound: float = float("inf"), check_every: int = 16, record: bool = True
    ) -> None:
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self.bound = bound
        self.check_every = check_every
        self.record = record
        self.baseline: dict[tuple[int, int], int] | None = None
        self.series: list[float] = []
        self.peak = 1.0

    def __call__(self, engine: Engine, executed: ExecutedStep) -> None:
        if self.baseline is None:
            self.baseline = staying_distances(engine)
        if engine.step_count % self.check_every != 0:
            return
        value = stretch(engine, self.baseline)
        if self.record:
            self.series.append(value)
        self.peak = max(self.peak, value)
        if value > self.bound:
            raise SafetyViolation(
                f"stretch {value:.2f} exceeded bound {self.bound:.2f} at "
                f"step {engine.step_count}"
            )
