"""The four edge-manipulation primitives of Section 2, as a checked calculus.

The paper identifies four primitives that are *safe* (they preserve weak
connectivity, Lemma 1) and *universal* (they suffice to transform any
weakly connected graph into any other, Theorem 1), and shows each is
necessary (Theorem 2):

=============  ====  ========================================================
Introduction    ♦    u, holding refs to v and w, sends w's ref to v and
                     **keeps** its own copy. Special case *self-introduction*:
                     u sends its own ref to v.
Delegation      ♥    u, holding refs to v and w, sends w's ref to v and
                     **deletes** its own copy.
Fusion          ♠    u holds two references v, w with v = w; it keeps one.
Reversal        ♣    u holds a ref to v; it sends its own ref to v and
                     deletes the ref to v.
=============  ====  ========================================================

Except for self-introduction, u, v, w must be pairwise distinct.

:class:`PrimitiveGraph` is a mutable directed *multigraph* on which only
these primitives can act. Every operation validates its precondition and
appends to an auditable log, so a sequence of operations is a certified
derivation: replaying the log on the initial graph reproduces the final
graph, and (by Lemma 1, which the test-suite property-checks) weak
connectivity is preserved at every intermediate state.

The model-level counterpart — which protocol *action* realizes which
primitive — is documented in :mod:`repro.core.fdp`, whose handlers carry
the paper's ♦♥♠♣ annotations line by line.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from repro.errors import ModelViolation
from repro.graphs.connectivity import is_weakly_connected

__all__ = [
    "Primitive",
    "PrimitiveOp",
    "PrimitiveGraph",
    "apply_schedule",
]


class Primitive(enum.Enum):
    """The four primitives (plus the self-introduction special case)."""

    INTRODUCTION = "introduction"
    SELF_INTRODUCTION = "self_introduction"
    DELEGATION = "delegation"
    FUSION = "fusion"
    REVERSAL = "reversal"

    @property
    def symbol(self) -> str:
        """The paper's pseudocode annotation symbol."""
        return {
            Primitive.INTRODUCTION: "♦",
            Primitive.SELF_INTRODUCTION: "♦",
            Primitive.DELEGATION: "♥",
            Primitive.FUSION: "♠",
            Primitive.REVERSAL: "♣",
        }[self]

    def __repr__(self) -> str:
        return self.value


@dataclass(frozen=True)
class PrimitiveOp:
    """One logged primitive application.

    ``actor`` is the executing process u; the meaning of ``a``/``b``
    depends on the primitive:

    * INTRODUCTION(u, v, w): u introduces w to v  → a=v, b=w
    * SELF_INTRODUCTION(u, v): u introduces itself to v  → a=v, b=None
    * DELEGATION(u, v, w): u delegates w's ref to v  → a=v, b=w
    * FUSION(u, v): u fuses its duplicate refs to v  → a=v, b=None
    * REVERSAL(u, v): u reverses its edge to v  → a=v, b=None
    """

    primitive: Primitive
    actor: int
    a: int
    b: int | None = None

    def __repr__(self) -> str:
        args = f"{self.actor}, {self.a}" + ("" if self.b is None else f", {self.b}")
        return f"{self.primitive.value}({args})"


class PrimitiveGraph:
    """A directed multigraph mutable only through the four primitives.

    Edge multiplicities are tracked exactly: introduction *adds* a copy,
    fusion requires (and consumes) a duplicate, delegation moves a copy.
    Self-loops are representable (an adversarial initial state may contain
    them) but no primitive can remove a single self-loop copy, matching
    the strict reading of the paper (u, v, w pairwise distinct).
    """

    __slots__ = ("_nodes", "_edges", "log", "check_connectivity")

    def __init__(
        self,
        nodes: Iterable[int],
        edges: Iterable[tuple[int, int]] = (),
        *,
        check_connectivity: bool = False,
    ) -> None:
        self._nodes: set[int] = set(nodes)
        self._edges: Counter[tuple[int, int]] = Counter()
        for a, b in edges:
            if a not in self._nodes or b not in self._nodes:
                raise ModelViolation(f"edge ({a}, {b}) references unknown node")
            self._edges[(a, b)] += 1
        #: Audit log of every primitive applied.
        self.log: list[PrimitiveOp] = []
        #: When True, every primitive re-verifies Lemma 1 (slow; tests only).
        self.check_connectivity = check_connectivity

    # -- inspection --------------------------------------------------------------

    @property
    def nodes(self) -> frozenset[int]:
        return frozenset(self._nodes)

    def multiplicity(self, u: int, v: int) -> int:
        """Number of parallel copies of edge (u, v)."""
        return self._edges.get((u, v), 0)

    def has_edge(self, u: int, v: int) -> bool:
        return self._edges.get((u, v), 0) > 0

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate edges with multiplicity (each copy yielded separately)."""
        for (a, b), count in self._edges.items():
            for _ in range(count):
                yield (a, b)

    def simple_edges(self) -> frozenset[tuple[int, int]]:
        """The underlying simple edge set."""
        return frozenset(k for k, c in self._edges.items() if c > 0)

    def edge_count(self) -> int:
        """Total number of edge copies."""
        return sum(self._edges.values())

    def out_neighbours(self, u: int) -> set[int]:
        """Targets of u's outgoing edges."""
        return {b for (a, b), c in self._edges.items() if a == u and c > 0}

    def undirected_adjacency(self) -> dict[int, set[int]]:
        adj: dict[int, set[int]] = {n: set() for n in self._nodes}
        for (a, b), c in self._edges.items():
            if c > 0 and a != b:
                adj[a].add(b)
                adj[b].add(a)
        return adj

    def is_weakly_connected(self) -> bool:
        return is_weakly_connected(self.undirected_adjacency())

    def copy(self) -> PrimitiveGraph:
        clone = PrimitiveGraph(self._nodes)
        clone._edges = Counter(self._edges)
        return clone

    def state_key(self) -> frozenset[tuple[tuple[int, int], int]]:
        """Hashable canonical form (for reachability search)."""
        return frozenset((k, c) for k, c in self._edges.items() if c > 0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrimitiveGraph):
            return NotImplemented
        return self._nodes == other._nodes and self.state_key() == other.state_key()

    def __hash__(self) -> int:  # pragma: no cover - dict usage via state_key
        return hash((frozenset(self._nodes), self.state_key()))

    def __repr__(self) -> str:
        return f"PrimitiveGraph(n={len(self._nodes)}, m={self.edge_count()})"

    # -- internals --------------------------------------------------------------------

    def _require(self, condition: bool, message: str) -> None:
        if not condition:
            raise ModelViolation(message)

    def _add(self, u: int, v: int) -> None:
        self._edges[(u, v)] += 1

    def _remove(self, u: int, v: int) -> None:
        count = self._edges.get((u, v), 0)
        self._require(count > 0, f"no edge ({u}, {v}) to remove")
        if count == 1:
            del self._edges[(u, v)]
        else:
            self._edges[(u, v)] = count - 1

    def _finish(self, op: PrimitiveOp) -> PrimitiveOp:
        self.log.append(op)
        if self.check_connectivity and not self.is_weakly_connected():
            raise ModelViolation(
                f"Lemma 1 violated: {op!r} disconnected the graph (BUG)"
            )
        return op

    # -- the four primitives -------------------------------------------------------

    def introduce(self, u: int, v: int, w: int) -> PrimitiveOp:
        """♦ u introduces w to v: a new edge (v, w) appears; (u, v), (u, w) kept."""
        self._require(u != v and v != w and u != w, "u, v, w must be pairwise distinct")
        self._require(self.has_edge(u, v), f"introduction needs edge ({u}, {v})")
        self._require(self.has_edge(u, w), f"introduction needs edge ({u}, {w})")
        self._add(v, w)
        return self._finish(PrimitiveOp(Primitive.INTRODUCTION, u, v, w))

    def self_introduce(self, u: int, v: int) -> PrimitiveOp:
        """♦ u sends its own reference to v, keeping its edge to v."""
        self._require(u != v, "self-introduction needs a distinct target")
        self._require(self.has_edge(u, v), f"self-introduction needs edge ({u}, {v})")
        self._add(v, u)
        return self._finish(PrimitiveOp(Primitive.SELF_INTRODUCTION, u, v))

    def delegate(self, u: int, v: int, w: int) -> PrimitiveOp:
        """♥ u delegates w's ref to v: edge (u, w) becomes edge (v, w)."""
        self._require(u != v and v != w and u != w, "u, v, w must be pairwise distinct")
        self._require(self.has_edge(u, v), f"delegation needs edge ({u}, {v})")
        self._require(self.has_edge(u, w), f"delegation needs edge ({u}, {w})")
        self._remove(u, w)
        self._add(v, w)
        return self._finish(PrimitiveOp(Primitive.DELEGATION, u, v, w))

    def fuse(self, u: int, v: int) -> PrimitiveOp:
        """♠ u fuses two equal references: one duplicate copy of (u, v) vanishes."""
        self._require(
            self.multiplicity(u, v) >= 2,
            f"fusion needs two copies of ({u}, {v}), have {self.multiplicity(u, v)}",
        )
        self._remove(u, v)
        return self._finish(PrimitiveOp(Primitive.FUSION, u, v))

    def reverse(self, u: int, v: int) -> PrimitiveOp:
        """♣ u reverses its edge to v: (u, v) is replaced by (v, u)."""
        self._require(u != v, "reversal needs a distinct target")
        self._require(self.has_edge(u, v), f"reversal needs edge ({u}, {v})")
        self._remove(u, v)
        self._add(v, u)
        return self._finish(PrimitiveOp(Primitive.REVERSAL, u, v))

    # -- replay --------------------------------------------------------------------

    def apply(self, op: PrimitiveOp) -> PrimitiveOp:
        """Apply a logged operation (used to replay certified schedules)."""
        if op.primitive is Primitive.INTRODUCTION:
            return self.introduce(op.actor, op.a, op.b)  # type: ignore[arg-type]
        if op.primitive is Primitive.SELF_INTRODUCTION:
            return self.self_introduce(op.actor, op.a)
        if op.primitive is Primitive.DELEGATION:
            return self.delegate(op.actor, op.a, op.b)  # type: ignore[arg-type]
        if op.primitive is Primitive.FUSION:
            return self.fuse(op.actor, op.a)
        if op.primitive is Primitive.REVERSAL:
            return self.reverse(op.actor, op.a)
        raise ModelViolation(f"unknown primitive {op.primitive!r}")  # pragma: no cover


def apply_schedule(
    graph: PrimitiveGraph, schedule: Iterable[PrimitiveOp]
) -> PrimitiveGraph:
    """Replay *schedule* on *graph* (mutating it); returns the graph."""
    for op in schedule:
        graph.apply(op)
    return graph
