"""Section 4: embedding the departure protocol into any overlay protocol P ∈ 𝒫.

Given an overlay maintenance protocol P (as an
:class:`~repro.overlays.base.OverlayLogic`) that

* decomposes into the four primitives (safety),
* self-introduces periodically in its timeout, and
* can reintegrate references via a postprocess hook,

:class:`FrameworkProcess` realizes the combined protocol P′ that solves
the FDP while letting P operate undisturbed for the staying processes
(Theorem 4). The construction follows the paper's description:

**preprocess / verify / process.** Whenever P wants to send
``v ← label(x₁ … x_k)``, the message is *not* sent. It is stored in the
process's ``mlist`` with every referenced process's mode marked
``unknown``, and a ``verify(u)`` message goes to v and each xᵢ. Every
process (staying or leaving) answers ``verify`` with ``process(self)``
carrying its true mode. Once all modes for an mlist entry are known, the
entry is *finalized*: if everyone involved is staying, the original P
message is sent; otherwise the local ``postprocess`` runs — staying
references are reintegrated into P, references of leaving processes are
removed by handing those processes our own reference (a reversal, i.e.
exactly the ``forward``/``present`` machinery of the Section 3 protocol).

**verify retries and the gone-target fallback.** Verify messages are
re-sent in every timeout while unanswered. A process that exited can
never answer, so after ``max_verify_retries`` resends the unanswered
modes are *presumed leaving* and the entry is finalized via postprocess.
This presumption is safe even when wrong: postprocess never destroys
connectivity (it reverses, it does not drop), so a slow-but-staying
process merely costs P some re-stabilization work. The paper leaves this
corner to the unpublished full framework; the retry bound is our
reconstruction and is ablated in the E8 benchmarks.

**leaving processes.** A leaving process does not execute P actions: on
receiving a P message it sends ``present(self)`` to every referenced
process (so they remove references to it), and its timeout drains P's
references and its own mlist into the Section 3 departure machinery
(anchor adoption, delegation, SINGLE-guarded exit).

**staying processes.** ``present``/``forward`` behave as in Section 3
except that a staying reference received from a staying process is handed
to P's ``integrate`` instead of a flat ``N := N ∪ {v}`` — P decides where
the reference belongs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import partial
from collections.abc import Iterator
from typing import Any

from repro.core.fdp import FDPProcess, normalize_belief
from repro.sim.messages import RefInfo
from repro.sim.process import ActionContext
from repro.sim.refs import Ref
from repro.sim.states import Mode

__all__ = ["FrameworkProcess", "PendingMessage"]


@dataclass(slots=True)
class PendingMessage:
    """One withheld P message awaiting mode verification."""

    uid: int
    target: Ref
    label: str
    args: tuple[Any, ...]  # bare Refs and opaque payload, original order
    modes: dict[Ref, Mode | None]  # None = unknown (verify outstanding)
    retries: int = 0
    presumed: set[Ref] = field(default_factory=set)  # timeout-presumed leaving

    def unknown_refs(self) -> list[Ref]:
        return [r for r, m in self.modes.items() if m is None]

    def ready(self) -> bool:
        return not self.unknown_refs()

    def all_staying(self) -> bool:
        return all(m is Mode.STAYING for m in self.modes.values())

    def refs(self) -> Iterator[Ref]:
        yield self.target
        for a in self.args:
            if isinstance(a, Ref):
                yield a


class FrameworkProcess(FDPProcess):
    """P′ = framework(P): one process of the combined protocol.

    ``logic_factory`` builds the per-process
    :class:`~repro.overlays.base.OverlayLogic`. The inherited FDP
    neighbourhood ``N`` stays empty for staying processes — P's variables
    replace it — but the anchor machinery is inherited unchanged.
    """

    #: verify resends before unanswered modes are presumed leaving.
    max_verify_retries: int = 8

    #: Stored refs span the overlay logic's internals, ``beliefs`` and the
    #: mlist — too diffuse for write-through tracking; the engine keeps
    #: fingerprint-diffing this protocol (the inherited tracked N/anchor
    #: containers stay dormant: their log is never armed).
    ref_tracking = False

    @classmethod
    def join(cls, pid: int, logic_factory, contact: Ref) -> "FrameworkProcess":
        """A newcomer pre-wired to attach by edge to *contact* — hand the
        result straight to :meth:`repro.sim.engine.Engine.admit`."""
        proc = cls(pid, Mode.STAYING, logic_factory)
        proc.logic.join(contact)
        return proc

    def __init__(self, pid: int, mode: Mode, logic_factory) -> None:
        super().__init__(pid, mode)
        self.logic = logic_factory(self.self_ref)
        self.requires_order = self.logic.requires_order
        #: the framework's knowledge of P-neighbour modes.
        self.beliefs: dict[Ref, Mode] = {}
        self.mlist: list[PendingMessage] = []
        self._uid = itertools.count()
        #: context threaded to P's send function for the current atomic
        #: action (set by _p_send_fn, consumed synchronously by _p_send —
        #: avoids allocating a closure per action).
        self._p_ctx: ActionContext | None = None
        #: per-label dispatchers, built once (handler() must not allocate).
        self._p_handlers = {
            label: partial(self._dispatch_p, label)
            for label in self.logic.message_labels
        }

    # ------------------------------------------------------------------ state

    def stored_refs(self) -> Iterator[RefInfo]:
        yield from super().stored_refs()  # N (leaving transients) + anchor
        seen: set[Ref] = set()
        for ref in self.logic.neighbor_refs():
            if ref not in seen:
                seen.add(ref)
                yield RefInfo(ref, self.beliefs.get(ref, Mode.STAYING))
        for entry in self.mlist:
            for ref in entry.refs():
                if ref != self.self_ref:
                    yield RefInfo(ref, entry.modes.get(ref))

    def describe_vars(self) -> dict:
        out = super().describe_vars()
        out["logic"] = self.logic.describe_vars()
        out["mlist"] = [
            {
                "target": repr(e.target),
                "label": e.label,
                "unknown": [repr(r) for r in e.unknown_refs()],
                "retries": e.retries,
            }
            for e in self.mlist
        ]
        return out

    # ------------------------------------------------------------------ P send path

    def _p_send_fn(self, ctx: ActionContext):
        """The send function handed to P: every send is preprocessed."""
        self._p_ctx = ctx
        return self._p_send

    def _p_send(self, target: Ref, label: str, *args: Any) -> None:
        ctx = self._p_ctx
        assert ctx is not None, "P send outside an atomic action"
        self._preprocess(ctx, target, label, args)

    def _keys(self, ctx: ActionContext):
        return ctx.keys if self.requires_order else None

    def _preprocess(
        self, ctx: ActionContext, target: Ref, label: str, args: tuple[Any, ...]
    ) -> None:
        """Withhold the P message and launch mode verification."""
        modes: dict[Ref, Mode | None] = {}
        for ref in itertools.chain(
            [target], (a for a in args if isinstance(a, Ref))
        ):
            if ref == self.self_ref:
                continue  # our own mode is known and needs no verification
            modes.setdefault(ref, None)
        entry = PendingMessage(
            uid=next(self._uid),
            target=target,
            label=label,
            args=tuple(args),
            modes=modes,
        )
        if entry.ready():  # only self-references: deliver immediately
            self._finalize(ctx, entry)
            return
        self.mlist.append(entry)
        for ref in entry.unknown_refs():
            ctx.send(ref, "verify", RefInfo(self.self_ref, self.mode))

    def _finalize(self, ctx: ActionContext, entry: PendingMessage) -> None:
        """All modes known: send the P message, or postprocess."""
        if entry.all_staying():
            # Building the outgoing payload happens once per *finalized*
            # message; each RefInfo IS the piggybacked belief the model
            # requires the message to carry, not incidental copying.
            wrapped = tuple(
                RefInfo(a, entry.modes.get(a, self.mode))  # repro: noqa[PERF004]
                if isinstance(a, Ref)
                else a
                for a in entry.args
            )
            ctx.send(entry.target, entry.label, *wrapped)
            return
        self._postprocess(ctx, entry)

    def _postprocess(self, ctx: ActionContext, entry: PendingMessage) -> None:
        """Exclude leaving references, reintegrate staying ones into P."""
        handled: set[Ref] = set()
        for ref in entry.refs():
            if ref == self.self_ref or ref in handled:
                continue
            handled.add(ref)
            mode = entry.modes.get(ref, Mode.STAYING)
            if mode is Mode.STAYING:
                self._integrate(ctx, ref)
            else:
                # Reversal: the (possibly gone, then harmless) leaving
                # process receives our reference instead of us keeping
                # its.                                                    ♣
                # P must also forget the reference (as on_present does for
                # a *verified* leaving mode) — otherwise a presumed-gone
                # neighbour stays in P, P re-targets it on every timeout,
                # and each round spawns a fresh verify cycle that can
                # never be answered: a livelock with unbounded channel
                # growth.
                if self.logic.drop_neighbor(ref):
                    self.beliefs.pop(ref, None)
                ctx.send(ref, "present", RefInfo(self.self_ref, self.mode))
        payload = tuple(a for a in entry.args if not isinstance(a, Ref))
        if payload:
            self.logic.postprocess_extra(ctx, payload)

    def _integrate(self, ctx: ActionContext, ref: Ref) -> None:
        """Hand a staying reference to P (Section 4's modified N ∪ {v})."""
        if ref == self.self_ref:
            return
        if self.mode is Mode.LEAVING:
            # Leaving processes run the Section 3 machinery instead.
            self.on_forward(ctx, RefInfo(ref, Mode.STAYING))
            return
        self.beliefs[ref] = Mode.STAYING
        if self.requires_order:
            # integrate never sends; only key classification is needed.
            if hasattr(self.logic, "integrate_with_keys"):
                from repro.sim.refs import KeyProvider

                self.logic.integrate_with_keys(KeyProvider(), ref)
                return
        self.logic.integrate(self._p_send_fn(ctx), ref)

    # ------------------------------------------------------------------ timeout

    def timeout(self, ctx: ActionContext) -> None:
        if self.mode is Mode.LEAVING:
            self._leaving_timeout(ctx)
        else:
            self._staying_timeout(ctx)

    def _staying_timeout(self, ctx: ActionContext) -> None:
        # Anchor hygiene, inherited from Algorithm 1 lines 16–18.
        if self.anchor is not None:
            self._clear_anchor_to_self(ctx)
        # Drop P-neighbours now known to be leaving (reversal).           ♣
        for ref in list(self.logic.neighbor_refs()):
            if self.beliefs.get(ref, Mode.STAYING) is Mode.LEAVING:
                self.logic.drop_neighbor(ref)
                self.beliefs.pop(ref, None)
                ctx.send(ref, "present", RefInfo(self.self_ref, self.mode))
        # Any stray N content (transients from Section 3 branches) is
        # handed to P.
        for ref, belief in list(self.N.items()):
            del self.N[ref]
            if belief is Mode.LEAVING:
                ctx.send(ref, "present", RefInfo(self.self_ref, self.mode))  # ♣
            else:
                self._integrate(ctx, ref)
        # P's own periodic maintenance (sends are preprocessed).
        self.logic.p_timeout(self._p_send_fn(ctx), self._keys(ctx))
        # mlist maintenance: resend verifies; presume leaving after the
        # retry budget (see module docstring).
        finished: list[PendingMessage] = []
        for entry in self.mlist:
            unknowns = entry.unknown_refs()
            if not unknowns:
                finished.append(entry)  # pragma: no cover - finalized eagerly
                continue
            entry.retries += 1
            if entry.retries > self.max_verify_retries:
                for ref in unknowns:
                    entry.modes[ref] = Mode.LEAVING
                    entry.presumed.add(ref)
                finished.append(entry)
            else:
                for ref in unknowns:
                    ctx.send(ref, "verify", RefInfo(self.self_ref, self.mode))
        for entry in finished:
            self.mlist.remove(entry)
            self._finalize(ctx, entry)

    def _leaving_timeout(self, ctx: ActionContext) -> None:
        # Drain P's references and the mlist into the Section 3 machinery.
        drained = False
        for ref in list(self.logic.neighbor_refs()):
            self.logic.drop_neighbor(ref)
            belief = self.beliefs.pop(ref, Mode.STAYING)
            ctx.send(self.self_ref, "forward", RefInfo(ref, belief))  #    ♦
            drained = True
        for entry in self.mlist:
            for ref in dict.fromkeys(entry.refs()):  # ordered dedup
                if ref == self.self_ref:
                    continue
                ctx.send(
                    self.self_ref,
                    "forward",
                    RefInfo(ref, entry.modes.get(ref) or Mode.STAYING),
                )
                drained = True
        self.mlist.clear()
        if drained:
            return
        # Nothing of P's left: run the plain Algorithm 1 (which handles
        # the N transients, the anchor, SINGLE and exit).
        super().timeout(ctx)

    # ------------------------------------------------------------------ departure-layer handlers

    def on_present(self, ctx: ActionContext, info: RefInfo) -> None:
        """Algorithm 2, with the staying-from-staying branch handed to P."""
        v = info.ref
        if v == self.self_ref:
            return
        m = normalize_belief(info.mode)
        if (
            self.mode is Mode.STAYING
            and m is Mode.STAYING
        ):
            self._drop_stale_anchor(v, m)
            self._integrate(ctx, v)  # Section 4's modified line 17
            return
        if self.mode is Mode.STAYING and m is Mode.LEAVING:
            # Make sure P also forgets v (lines 7–8 analogue).            ♠
            if self.logic.drop_neighbor(v):
                self.beliefs.pop(v, None)
        super().on_present(ctx, info)

    def on_forward(self, ctx: ActionContext, info: RefInfo) -> None:
        """Algorithm 3, with the staying-from-staying branch handed to P."""
        v = info.ref
        if v == self.self_ref:
            return
        m = normalize_belief(info.mode)
        if self.mode is Mode.STAYING and m is Mode.STAYING:
            self._drop_stale_anchor(v, m)
            self._integrate(ctx, v)  # Section 4's modified line 20
            return
        if self.mode is Mode.STAYING and m is Mode.LEAVING:
            if self.logic.drop_neighbor(v):  #                            ♠
                self.beliefs.pop(v, None)
        super().on_forward(ctx, info)

    # ------------------------------------------------------------------ framework messages

    def on_verify(self, ctx: ActionContext, info: RefInfo) -> None:
        """Answer a mode query with our true mode (all processes answer)."""
        requester = info.ref
        if requester == self.self_ref:
            return
        ctx.send(requester, "process", RefInfo(self.self_ref, self.mode))

    def on_process(self, ctx: ActionContext, info: RefInfo) -> None:
        """A verified mode arrived: update mlist entries (and beliefs)."""
        x = info.ref
        if x == self.self_ref:
            return
        m = normalize_belief(info.mode)
        self._drop_stale_anchor(x, m)
        matched = False
        ready: list[PendingMessage] = []
        for entry in self.mlist:
            if x in entry.modes:
                if entry.modes[x] is None:
                    entry.modes[x] = m
                matched = True
                if entry.ready():
                    ready.append(entry)
        if x in self.beliefs or any(r == x for r in self.logic.neighbor_refs()):
            self.beliefs[x] = m
            matched = True
        for entry in ready:
            self.mlist.remove(entry)
            self._finalize(ctx, entry)
        if not matched:
            # Unsolicited/garbage: dispose of the reference safely via the
            # standard forward machinery (never just drop an edge).
            self.on_forward(ctx, RefInfo(x, m))

    # ------------------------------------------------------------------ P messages

    def handler(self, label: str):
        fn = self._p_handlers.get(label)
        if fn is not None:
            return fn
        return super().handler(label)

    def _dispatch_p(self, label: str, ctx: ActionContext, *args) -> None:
        self._handle_p_message(ctx, label, args)

    def _handle_p_message(
        self, ctx: ActionContext, label: str, args: tuple[Any, ...]
    ) -> None:
        infos = [a for a in args if isinstance(a, RefInfo)]
        if self.mode is Mode.LEAVING:
            # Leaving processes do not execute P actions; they remove
            # possible references to themselves instead.                  ♣
            for info in infos:
                if info.ref != self.self_ref:
                    ctx.send(
                        info.ref, "present", RefInfo(self.self_ref, self.mode)
                    )
            return
        leaving_claimed = [
            i for i in infos if normalize_belief(i.mode) is Mode.LEAVING
        ]
        if leaving_claimed:
            # Verified P messages only reference staying processes, so
            # this is corrupted-initial-state garbage: salvage the refs
            # without running P.
            for info in infos:
                if info.ref == self.self_ref:
                    continue
                if normalize_belief(info.mode) is Mode.LEAVING:
                    ctx.send(
                        info.ref, "present", RefInfo(self.self_ref, self.mode)
                    )  #                                                   ♣
                else:
                    self._integrate(ctx, info.ref)
            return
        bare = tuple(a.ref if isinstance(a, RefInfo) else a for a in args)
        for info in infos:
            if info.ref != self.self_ref:
                self.beliefs[info.ref] = Mode.STAYING
        self.logic.handle(self._p_send_fn(ctx), self._keys(ctx), label, *bare)
