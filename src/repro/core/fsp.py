"""The Finite Sleep Problem variant: departure without an oracle.

In the FSP the ``exit`` command (and hence the gone state) is unavailable;
leaving processes instead ``sleep``, and a sleeping process resumes
computation whenever a message addressed to it is processed. Legitimacy
requires every leaving process to be *hibernating*: asleep with an empty
channel and no directed path from any awake-or-messageful process. By the
claim of Foreback et al. [15] reproduced in the paper, a hibernating
process is permanently asleep — hibernation is the sleep-world analogue
of being gone.

:class:`FSPProcess` reuses the entire Algorithms 1–3 transcription from
:class:`~repro.core.fdp.FDPProcess`. The paper only sketches the FSP
("analogous to the results in [15] we can overcome the use of oracles by
relaxing the FDP to the FSP"), so the precise variant below is our
reconstruction; every adaptation exists to remove a concrete livelock our
adversarial-scheduler tests exhibit for the naive "replace exit by sleep"
translation, and each is recorded in DESIGN.md:

1. **No oracle; sleep instead of exit.** A leaving process whose
   neighbourhood has drained sleeps unconditionally. Sleeping is safely
   reversible: if some process still holds our reference, its periodic
   self-introduction wakes us and we handle the message as usual.

2. **Parking instead of the forward-path leaving↔leaving reversal.**
   In the FDP, an anchor-less leaving process that is *forwarded* a
   reference to another leaving process performs a reversal, handing over
   its own reference. Two mutually-referencing anchor-less leaving
   processes then bounce references forever; the FDP escapes because
   SINGLE eventually lets one exit, but with ``sleep`` the pair wakes
   each other indefinitely. The FSP variant *parks* the reference
   instead: it is stored in a dedicated ``parked`` set (an ordinary
   explicit edge, so weak connectivity is preserved — parking is strictly
   more conservative than reversal) and delegated to the anchor as soon
   as one is known. Parked edges never block the holder's own hibernation
   (hibernation concerns paths *to* a process), so chains of mutually
   parked leaving processes hibernate together.

3. **Park notification.** Parking alone would freeze invalid information:
   if the parked process is actually *staying*, nobody ever tells it — or
   us — the truth, Φ stalls above zero, and the staying process may stay
   severed from the staying subgraph. Therefore the *first* time a
   reference is parked we self-introduce to it (legal ♦ over the parked
   edge, carrying our always-valid self information). A staying recipient
   answers with a reversal, which makes us adopt it as our anchor; a
   leaving recipient answers with its own true information, which we
   silently re-park — one round-trip, no livelock.

4. **One-shot anchor verification.** Corrupted initial states can pair
   two leaving processes as each other's anchors with believed-staying
   (invalid) anchor beliefs; each would forever delegate traffic to the
   other. In the FDP the ``present(u)``-to-anchor of Algorithm 1 runs
   whenever SINGLE is false and flushes such lies; the FSP has no such
   retry loop (it would ping a staying anchor awake forever), so instead
   an adopted-or-inherited anchor is verified exactly once: we
   self-introduce to it and mark it verified when its answer confirms a
   staying mode (a leaving answer purges it via the standard stale-anchor
   rule, after which it is parked).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.fdp import FDPProcess
from repro.sim.messages import RefInfo
from repro.sim.process import ActionContext
from repro.sim.refs import Ref, RefMap
from repro.sim.states import Mode

__all__ = ["FSPProcess"]


class FSPProcess(FDPProcess):
    """FDP protocol with ``exit`` replaced by oracle-free ``sleep``."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: leaving-believed references held while we have no anchor
        #: (tracked, like ``N``, so ref_tracking stays sound).
        self.parked: RefMap = RefMap(self._ref_log)
        #: anchor-verification state (adaptation 4).
        self.anchor_verified = False
        self.anchor_probe_sent = False

    # ------------------------------------------------------------------ state

    def stored_refs(self) -> Iterator[RefInfo]:
        yield from super().stored_refs()
        for ref, belief in self.parked.items():
            yield RefInfo(ref, belief)

    def describe_vars(self) -> dict:
        out = super().describe_vars()
        out["parked"] = {repr(r): b.value for r, b in self.parked.items()}
        out["anchor_verified"] = self.anchor_verified
        return out

    # ------------------------------------------------------------------ hooks

    def _consult_oracle(self, ctx: ActionContext) -> bool:
        """No oracle in the FSP: a drained leaving process always proceeds
        to the departure step (sleeping is safely reversible)."""
        return True

    def _departure_ready(self, ctx: ActionContext) -> None:
        """N is empty: sleep instead of exiting (Alg. 1 line 7 analogue)."""
        ctx.sleep()

    def _leaving_ref_no_anchor(self, ctx: ActionContext, v: Ref, m: Mode) -> None:
        """Forwarded a leaving reference while anchor-less: park it, and on
        first contact tell the parked process who we are (adaptations 2+3)."""
        fresh = v not in self.parked
        self.parked[v] = m  # re-parking overwrites: fusion               ♠
        if fresh:
            # Self-introduction over the freshly parked edge: our true
            # mode reaches v, correcting a possibly invalid belief.      ♦
            ctx.send(v, "present", RefInfo(self.self_ref, self.mode))

    # The present-path leaving↔leaving reversal is inherited unchanged from
    # FDPProcess: a reversal answer to a *present* cannot ping-pong, because
    # the answer travels as *forward* and the forward path parks (above).

    # ------------------------------------------------------------------ timeout

    def timeout(self, ctx: ActionContext) -> None:
        """Algorithm 1 plus the parked-reference drain and anchor probe."""
        trusted_anchor = (
            self.anchor is not None and self.anchor_belief is not Mode.LEAVING
        )
        if trusted_anchor and self.parked:
            for v, belief in self.parked.items():
                if v == self.anchor:
                    # u, v, w pairwise distinct: the anchor itself cannot
                    # be delegated to the anchor; requeue it to self as a
                    # pending present, mirroring Alg. 1 line 2.
                    ctx.send(self.self_ref, "present", RefInfo(v, belief))
                else:
                    ctx.send(self.anchor, "forward", RefInfo(v, belief))  # ♥
            self.parked.clear()
        if (
            trusted_anchor
            and self.mode is Mode.LEAVING
            and not self.anchor_verified
            and not self.anchor_probe_sent
        ):
            # Adaptation 4: verify the anchor exactly once.              ♦
            ctx.send(self.anchor, "present", RefInfo(self.self_ref, self.mode))
            self.anchor_probe_sent = True
        super().timeout(ctx)

    # ------------------------------------------------------------------ learning

    def _note_anchor_answer(self, v: Ref, m: Mode) -> None:
        """Record a confirmation that our anchor is staying."""
        if self.anchor is not None and v == self.anchor and m is Mode.STAYING:
            self.anchor_verified = True

    def on_present(self, ctx: ActionContext, info: RefInfo) -> None:
        if info.ref != self.self_ref:
            self._note_anchor_answer(info.ref, self.normalized(info))
        had_anchor = self.anchor
        super().on_present(ctx, info)
        self._reset_probe_if_anchor_changed(had_anchor)

    def on_forward(self, ctx: ActionContext, info: RefInfo) -> None:
        if info.ref != self.self_ref:
            self._note_anchor_answer(info.ref, self.normalized(info))
        had_anchor = self.anchor
        super().on_forward(ctx, info)
        self._reset_probe_if_anchor_changed(had_anchor)

    @staticmethod
    def normalized(info: RefInfo) -> Mode:
        from repro.core.fdp import normalize_belief

        return normalize_belief(info.mode)

    def _reset_probe_if_anchor_changed(self, previous: Ref | None) -> None:
        if self.anchor != previous:
            self.anchor_verified = False
            self.anchor_probe_sent = False
