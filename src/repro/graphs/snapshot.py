"""Process-graph snapshots: the directed multigraph ``PG`` of the paper.

The overlay network of a set of processes is determined by their knowledge
of each other: there is a directed edge ``(a, b)`` if process *a* stores a
reference of *b* in its local memory (an **explicit** edge) or has a
message in ``a.Ch`` carrying a reference of *b* (an **implicit** edge).

:class:`ProcessGraph` is an immutable snapshot of that multigraph taken at
one system state, annotated with each node's mode/lifecycle state and each
edge's piggybacked mode belief. All of the paper's graph-level predicates
are computed from it:

* weak connectivity of the relevant subgraph (Lemma 2's invariant),
* the ``SINGLE`` oracle (edges with at most one other relevant process),
* hibernation (reverse reachability over asleep processes),
* the potential Φ (count of edges carrying invalid mode information),
* legitimacy conditions (i)–(iii) of Section 1.2.

Snapshots are plain data — cheap to build (one pass over local memories
and channels) and safe to hand to monitors, tests and analysis code
without aliasing live simulator state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Iterator

from repro.sim.states import Mode, PState

__all__ = ["EdgeKind", "Edge", "NodeView", "ProcessGraph"]


class EdgeKind(enum.Enum):
    """Whether an edge is stored in local memory or in flight."""

    EXPLICIT = "explicit"
    IMPLICIT = "implicit"

    def __repr__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Edge:
    """One directed edge of the process multigraph.

    ``belief`` is the holder's piggybacked/stored knowledge of the target's
    mode (``None`` when the protocol attached no mode information — such
    edges still count for connectivity but not for Φ).
    """

    src: int
    dst: int
    kind: EdgeKind
    belief: Mode | None = None

    @property
    def is_self_loop(self) -> bool:
        return self.src == self.dst


@dataclass(frozen=True, slots=True)
class NodeView:
    """Mode, lifecycle state and channel occupancy of one process."""

    pid: int
    mode: Mode
    state: PState
    channel_len: int

    @property
    def is_gone(self) -> bool:
        return self.state is PState.GONE

    @property
    def is_asleep(self) -> bool:
        return self.state is PState.ASLEEP


class ProcessGraph:
    """Immutable snapshot of the process multigraph at one system state."""

    __slots__ = ("_nodes", "_edges", "_out", "_in", "_relevant_cache")

    def __init__(self, nodes: Iterable[NodeView], edges: Iterable[Edge]) -> None:
        self._nodes: dict[int, NodeView] = {n.pid: n for n in nodes}
        self._edges: tuple[Edge, ...] = tuple(edges)
        self._out: dict[int, list[Edge]] = {pid: [] for pid in self._nodes}
        self._in: dict[int, list[Edge]] = {pid: [] for pid in self._nodes}
        for e in self._edges:
            if e.src in self._out:
                self._out[e.src].append(e)
            if e.dst in self._in:
                self._in[e.dst].append(e)
        self._relevant_cache: frozenset[int] | None = None

    # -- basic accessors -----------------------------------------------------------

    @property
    def pids(self) -> frozenset[int]:
        """All process ids in the snapshot (gone processes are excluded by
        construction: exit removes the process and its edges from PG)."""
        return frozenset(self._nodes)

    def node(self, pid: int) -> NodeView:
        return self._nodes[pid]

    def __contains__(self, pid: int) -> bool:
        return pid in self._nodes

    @property
    def edges(self) -> tuple[Edge, ...]:
        return self._edges

    def out_edges(self, pid: int) -> list[Edge]:
        return self._out.get(pid, [])

    def in_edges(self, pid: int) -> list[Edge]:
        return self._in.get(pid, [])

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return f"ProcessGraph(n={len(self._nodes)}, m={len(self._edges)})"

    # -- derived process sets ---------------------------------------------------------

    def staying(self) -> frozenset[int]:
        """Pids of staying processes."""
        return frozenset(p for p, n in self._nodes.items() if n.mode is Mode.STAYING)

    def leaving(self) -> frozenset[int]:
        """Pids of leaving processes."""
        return frozenset(p for p, n in self._nodes.items() if n.mode is Mode.LEAVING)

    def hibernating(self) -> frozenset[int]:
        """Pids of hibernating processes.

        A process *p* is hibernating iff *p* is asleep, ``p.Ch`` is empty,
        and every process *q* with a directed path to *p* in PG is also
        asleep with an empty channel. Computed as a fixpoint: start from
        the candidate set of quiet-asleep processes and repeatedly discard
        any candidate reachable from a non-candidate.
        """

        quiet = {
            pid
            for pid, n in self._nodes.items()
            if n.is_asleep and n.channel_len == 0
        }
        if not quiet:
            return frozenset()
        # A candidate is disqualified if any in-edge comes from outside the
        # quiet set; removal may disqualify downstream candidates, so iterate
        # with a worklist.
        changed = True
        while changed:
            changed = False
            for pid in list(quiet):
                for e in self._in[pid]:
                    if e.src not in quiet and e.src in self._nodes:
                        quiet.discard(pid)
                        changed = True
                        break
        return frozenset(quiet)

    def relevant(self) -> frozenset[int]:
        """Pids of relevant processes: neither gone nor hibernating.

        Gone processes are already absent from the snapshot, so this is
        simply all nodes minus the hibernating ones. Cached — several
        predicates (oracle, legitimacy, safety monitor) ask per snapshot.
        """

        if self._relevant_cache is None:
            self._relevant_cache = frozenset(self._nodes) - self.hibernating()
        return self._relevant_cache

    # -- neighbourhood predicates ------------------------------------------------------

    def partners(self, pid: int, within: frozenset[int] | None = None) -> set[int]:
        """Processes (≠ *pid*) that have an edge with *pid*, in either direction.

        Restricted to *within* when given (e.g. the relevant set, which is
        what the ``SINGLE`` oracle quantifies over).
        """

        found: set[int] = set()
        for e in self._out.get(pid, ()):
            if e.dst != pid and (within is None or e.dst in within):
                found.add(e.dst)
        for e in self._in.get(pid, ()):
            if e.src != pid and (within is None or e.src in within):
                found.add(e.src)
        return found

    # -- connectivity -----------------------------------------------------------------

    def undirected_adjacency(
        self, subset: frozenset[int] | None = None
    ) -> dict[int, set[int]]:
        """Undirected adjacency restricted to *subset* (defaults to all nodes)."""
        nodes = self.pids if subset is None else subset & self.pids
        adj: dict[int, set[int]] = {pid: set() for pid in nodes}
        for e in self._edges:
            if e.src in adj and e.dst in adj and e.src != e.dst:
                adj[e.src].add(e.dst)
                adj[e.dst].add(e.src)
        return adj

    def weakly_connected_components(
        self, subset: frozenset[int] | None = None
    ) -> list[frozenset[int]]:
        """Weakly connected components of the subgraph induced on *subset*."""
        from repro.graphs.connectivity import weakly_connected_components

        return weakly_connected_components(self.undirected_adjacency(subset))

    def is_weakly_connected(self, subset: frozenset[int]) -> bool:
        """Whether all of *subset* lies in one weakly connected component
        of the subgraph induced on *subset*."""
        if len(subset) <= 1:
            return True
        comps = self.weakly_connected_components(subset)
        return len(comps) == 1

    def is_weakly_connected_within(
        self, members: frozenset[int], universe: frozenset[int]
    ) -> bool:
        """Whether *members* all lie in one weakly connected component of
        the subgraph induced on *universe* (paths through non-member
        universe nodes count)."""
        members = members & self.pids
        if len(members) <= 1:
            return True
        for comp in self.weakly_connected_components(universe):
            if members <= comp:
                return True
        return False

    def filter_nodes(self, keep: Callable[[NodeView], bool]) -> ProcessGraph:
        """Return the snapshot induced on nodes satisfying *keep*."""
        nodes = [n for n in self._nodes.values() if keep(n)]
        kept = {n.pid for n in nodes}
        edges = [e for e in self._edges if e.src in kept and e.dst in kept]
        return ProcessGraph(nodes, edges)

    def edge_multiset(self) -> dict[tuple[int, int], int]:
        """Multiplicity map ``(src, dst) -> count`` (ignores kind/belief)."""
        counts: dict[tuple[int, int], int] = {}
        for e in self._edges:
            key = (e.src, e.dst)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def simple_edges(self) -> frozenset[tuple[int, int]]:
        """The underlying simple directed edge set (self-loops removed)."""
        return frozenset(
            (e.src, e.dst) for e in self._edges if e.src != e.dst
        )

    def iter_invalid_edges(self, actual_mode: Callable[[int], Mode]) -> Iterator[Edge]:
        """Yield edges whose attached belief contradicts the actual mode.

        ``actual_mode`` maps a pid to its true mode (the engine supplies
        it; modes of gone processes are still defined since ``mode`` is
        read-only and never changes).

        A missing belief (``None``) is treated as an implicit *staying*
        claim — the interpretation the FDP protocol gives it — so it is
        invalid information exactly when the referenced process is
        leaving. This keeps Φ's monotonicity (Lemma 3) exact when the
        fault injector plants mode-less garbage messages.
        """

        for e in self._edges:
            belief = e.belief if e.belief is not None else Mode.STAYING
            if belief is not actual_mode(e.dst):
                yield e
