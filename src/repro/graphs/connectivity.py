"""Connectivity algorithms: union-find, weak/strong components, reachability.

Implemented from scratch (networkx is used only as a *test oracle*, never
at runtime) because the simulator calls these in hot monitoring loops:

* :class:`UnionFind` — path-halving + union-by-size; the workhorse for the
  per-step safety monitor of Lemma 2 (amortized near-O(1) per edge);
* :func:`weakly_connected_components` — union-find over an undirected
  adjacency, O(V + E α(V));
* :func:`strongly_connected_components` — iterative Tarjan (no recursion,
  so deep path graphs cannot blow the Python stack);
* :func:`reachable_from` / :func:`can_reach` — plain BFS utilities used by
  hibernation detection and by the universality planner's shortest paths.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import TypeVar

__all__ = [
    "UnionFind",
    "weakly_connected_components",
    "is_weakly_connected",
    "strongly_connected_components",
    "is_strongly_connected",
    "reachable_from",
    "reverse_reachable",
    "bfs_shortest_path",
]

T = TypeVar("T", bound=Hashable)


class UnionFind:
    """Disjoint-set forest with path halving and union by size."""

    __slots__ = ("_parent", "_size", "_count")

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: dict[T, T] = {}
        self._size: dict[T, int] = {}
        self._count = 0
        for item in items:
            self.add(item)

    def add(self, item: T) -> None:
        """Register *item* as a singleton set (no-op if already present)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1
            self._count += 1

    def find(self, item: T) -> T:
        """Return the canonical representative of *item*'s set."""
        parent = self._parent
        while parent[item] != item:
            parent[item] = parent[parent[item]]  # path halving
            item = parent[item]
        return item

    def union(self, a: T, b: T) -> bool:
        """Merge the sets of *a* and *b*; return True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._count -= 1
        return True

    def connected(self, a: T, b: T) -> bool:
        """Whether *a* and *b* are currently in the same set."""
        return self.find(a) == self.find(b)

    @property
    def n_sets(self) -> int:
        """Number of disjoint sets."""
        return self._count

    def groups(self) -> list[frozenset[T]]:
        """Return the sets as a list of frozensets."""
        by_root: dict[T, set[T]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return [frozenset(g) for g in by_root.values()]

    def __contains__(self, item: T) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)


def weakly_connected_components(
    adjacency: Mapping[T, Iterable[T]]
) -> list[frozenset[T]]:
    """Connected components of an undirected adjacency mapping.

    *adjacency* maps each node to its neighbours; nodes absent from the
    mapping's keys but present as neighbours are ignored (the caller
    controls the node universe — this is what restricts components to an
    induced subgraph).
    """

    uf = UnionFind(adjacency.keys())
    for node, neighbours in adjacency.items():
        for nb in neighbours:
            if nb in uf:
                uf.union(node, nb)
    return uf.groups()


def is_weakly_connected(adjacency: Mapping[T, Iterable[T]]) -> bool:
    """Whether the undirected graph given by *adjacency* is connected."""
    if not adjacency:
        return True
    uf = UnionFind(adjacency.keys())
    for node, neighbours in adjacency.items():
        for nb in neighbours:
            if nb in uf:
                uf.union(node, nb)
    return uf.n_sets == 1


def strongly_connected_components(
    adjacency: Mapping[T, Sequence[T]]
) -> list[frozenset[T]]:
    """Tarjan's SCC algorithm, iterative formulation.

    Returns components in reverse topological order (standard for Tarjan).
    Only neighbours present in ``adjacency``'s key set are followed.
    """

    index: dict[T, int] = {}
    lowlink: dict[T, int] = {}
    on_stack: set[T] = set()
    stack: list[T] = []
    components: list[frozenset[T]] = []
    counter = 0

    for root in adjacency:
        if root in index:
            continue
        # Explicit DFS stack of (node, iterator position).
        work: list[tuple[T, int]] = [(root, 0)]
        while work:
            node, pos = work.pop()
            if pos == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            neighbours = [n for n in adjacency.get(node, ()) if n in adjacency]
            advanced = False
            for i in range(pos, len(neighbours)):
                nb = neighbours[i]
                if nb not in index:
                    work.append((node, i + 1))
                    work.append((nb, 0))
                    advanced = True
                    break
                if nb in on_stack:
                    lowlink[node] = min(lowlink[node], index[nb])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                comp: set[T] = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.add(w)
                    if w == node:
                        break
                components.append(frozenset(comp))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def is_strongly_connected(adjacency: Mapping[T, Sequence[T]]) -> bool:
    """Whether the directed graph given by *adjacency* is strongly connected."""
    if not adjacency:
        return True
    return len(strongly_connected_components(adjacency)) == 1


def reachable_from(adjacency: Mapping[T, Iterable[T]], start: T) -> set[T]:
    """Nodes reachable from *start* by directed paths (including *start*)."""
    seen = {start}
    frontier = deque([start])
    while frontier:
        node = frontier.popleft()
        for nb in adjacency.get(node, ()):
            if nb not in seen and nb in adjacency:
                seen.add(nb)
                frontier.append(nb)
    return seen


def reverse_reachable(adjacency: Mapping[T, Iterable[T]], target: T) -> set[T]:
    """Nodes with a directed path *to* target (including *target*)."""
    reverse: dict[T, list[T]] = {node: [] for node in adjacency}
    for node, neighbours in adjacency.items():
        for nb in neighbours:
            if nb in reverse:
                reverse[nb].append(node)
    return reachable_from(reverse, target)


def bfs_shortest_path(
    adjacency: Mapping[T, Iterable[T]], start: T, goal: T
) -> list[T] | None:
    """Shortest directed path from *start* to *goal*, or ``None``.

    Used by the universality planner (Theorem 1): references are forwarded
    along shortest paths of the goal graph's bidirected extension.
    """

    if start == goal:
        return [start]
    parent: dict[T, T] = {start: start}
    frontier = deque([start])
    while frontier:
        node = frontier.popleft()
        for nb in adjacency.get(node, ()):
            if nb in parent or nb not in adjacency:
                continue
            parent[nb] = node
            if nb == goal:
                path = [nb]
                while path[-1] != start:
                    path.append(parent[path[-1]])
                return path[::-1]
            frontier.append(nb)
    return None
