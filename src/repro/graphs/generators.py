"""Topology generators for initial overlay configurations.

Every generator returns a directed edge list over pids ``0..n-1`` and is
deterministic given its seed. Connected generators guarantee *weak*
connectivity — the precondition of every theorem in the paper — and the
test-suite property-checks that guarantee.

These are *initial-state* topologies: the fault injector turns them into
full corrupted system states (beliefs, channel garbage, anchors), and the
universality planner (Theorem 1 / E3) uses pairs of them as (G, G′)
transformation instances.
"""

from __future__ import annotations

from random import Random
from collections.abc import Callable

__all__ = [
    "line",
    "bidirected_line",
    "ring",
    "star",
    "clique",
    "binary_tree",
    "random_tree",
    "random_connected",
    "random_weakly_connected_digraph",
    "lollipop",
    "two_cliques_bridge",
    "GENERATORS",
]

EdgeList = list[tuple[int, int]]


def _check_n(n: int, minimum: int = 1) -> None:
    if n < minimum:
        raise ValueError(f"need at least {minimum} nodes, got {n}")


def line(n: int) -> EdgeList:
    """Directed path ``0 → 1 → … → n-1``."""
    _check_n(n)
    return [(i, i + 1) for i in range(n - 1)]


def bidirected_line(n: int) -> EdgeList:
    """Doubly linked list: edges both ways between consecutive pids.

    This is the target topology of the linearization overlay and of the
    sorted-list protocol of Foreback et al. [15].
    """

    _check_n(n)
    out: EdgeList = []
    for i in range(n - 1):
        out.append((i, i + 1))
        out.append((i + 1, i))
    return out


def ring(n: int) -> EdgeList:
    """Directed cycle ``0 → 1 → … → n-1 → 0``."""
    _check_n(n)
    if n == 1:
        return []
    return [(i, (i + 1) % n) for i in range(n)]


def star(n: int, center: int = 0) -> EdgeList:
    """Center points at every other node."""
    _check_n(n)
    return [(center, i) for i in range(n) if i != center]


def clique(n: int) -> EdgeList:
    """All ordered pairs (the target of the transitive-closure overlay)."""
    _check_n(n)
    return [(i, j) for i in range(n) for j in range(n) if i != j]


def binary_tree(n: int) -> EdgeList:
    """Complete binary tree, edges parent → child."""
    _check_n(n)
    out: EdgeList = []
    for i in range(1, n):
        out.append(((i - 1) // 2, i))
    return out


def random_tree(n: int, seed: int = 0) -> EdgeList:
    """Uniform random recursive tree: node *i* attaches to a random j < i."""
    _check_n(n)
    rng = Random(seed)
    out: EdgeList = []
    for i in range(1, n):
        parent = rng.randrange(i)
        # Random orientation keeps the digraph interesting while weakly connected.
        out.append((parent, i) if rng.random() < 0.5 else (i, parent))
    return out


def random_connected(n: int, extra_edges: int = 0, seed: int = 0) -> EdgeList:
    """Random weakly connected digraph: random tree + *extra_edges* chords."""
    _check_n(n)
    rng = Random(seed)
    edges = set(random_tree(n, seed=rng.randrange(2**30)))
    attempts = 0
    while len(edges) < n - 1 + extra_edges and attempts < 50 * (extra_edges + 1):
        a, b = rng.randrange(n), rng.randrange(n)
        attempts += 1
        if a != b and (a, b) not in edges:
            edges.add((a, b))
    return sorted(edges)


def random_weakly_connected_digraph(n: int, density: float = 0.1, seed: int = 0) -> EdgeList:
    """Random digraph with ≈``density·n·(n-1)`` edges, forced weakly connected."""
    _check_n(n)
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must lie in [0, 1]")
    target = max(0, int(round(density * n * (n - 1))) - (n - 1))
    return random_connected(n, extra_edges=target, seed=seed)


def lollipop(n: int, head: int | None = None) -> EdgeList:
    """A clique of ``head`` nodes with a path hanging off it.

    Stress topology: the path end is far from the dense part, which makes
    leaving processes deep in the tail slow to learn about alternatives.
    """

    _check_n(n, 2)
    head = max(2, n // 2) if head is None else head
    head = min(head, n)
    out: EdgeList = [(i, j) for i in range(head) for j in range(head) if i != j]
    for i in range(head - 1, n - 1):
        out.append((i, i + 1))
    return out


def two_cliques_bridge(n: int) -> EdgeList:
    """Two cliques joined by a single bridge edge.

    The bridge endpoints are articulation-like: making one of them a
    leaving process exercises exactly the disconnection risk the ``SINGLE``
    oracle exists to prevent.
    """

    _check_n(n, 4)
    half = n // 2
    out: EdgeList = [(i, j) for i in range(half) for j in range(half) if i != j]
    out += [(i, j) for i in range(half, n) for j in range(half, n) if i != j]
    out.append((half - 1, half))
    return out


#: Registry used by experiment sweeps to iterate named topologies.
GENERATORS: dict[str, Callable[..., EdgeList]] = {
    "line": line,
    "bidirected_line": bidirected_line,
    "ring": ring,
    "star": star,
    "clique": clique,
    "binary_tree": binary_tree,
    "random_tree": random_tree,
    "random_connected": random_connected,
    "lollipop": lollipop,
    "two_cliques_bridge": two_cliques_bridge,
}
