"""Incrementally maintained live view of the process multigraph.

:class:`~repro.graphs.snapshot.ProcessGraph` is a *rebuild-on-read*
snapshot: one full pass over every local memory and channel. That is the
right shape for analysis code, but per-step monitoring and oracle
evaluation made the engine rebuild it after nearly every step —
O(steps·(V+E)) observation cost dominating oracle- and monitor-heavy
runs. :class:`LiveGraph` replaces that path with *event-sourced
incremental maintenance*: the engine feeds it typed deltas at the
mutation sources and every observable quantity is updated in O(Δ).

The delta vocabulary (the only ways the process graph can change):

* ``on_enqueue(pid, msg)`` / ``on_dequeue(pid, msg)`` — a message enters
  or leaves ``pid.Ch``; its :class:`~repro.sim.messages.RefInfo` payloads
  are the implicit edges ``(pid, ref)``.
* ``apply_ref_deltas(pid, deltas)`` — the acting process's tracked ref
  containers recorded net store/drop deltas write-through during the
  action (only the acting process may mutate its own local memory); the
  engine drains them here at O(writes) cost.
* ``apply_explicit_diff(pid, before)`` — fingerprint fallback for
  untracked processes (and the ``REPRO_REF_MODE`` differential oracle):
  the engine diffs the acting process's ``stored_refs()`` around the
  action, yielding the same deltas at O(refs) cost.
* ``on_state(pid, state)`` — lifecycle transitions. ``exit`` purges the
  process's out-edges (exit removes a process and its incident edges
  from PG); ``sleep``/wake only flip the state used by relevance queries.
* ``on_admit(pid, proc)`` / ``on_reap(pid)`` — open-system churn: a
  process joins mid-run (node plus its initial explicit edges appear) or
  a gone, unreferenced process is reclaimed. Reaped pids keep a ``GONE``
  tombstone in the state map so stale pair counts naming them stay
  excluded from connectivity rebuilds.
* ``reprice(pid, new_mode)`` — re-derive pid's Φ contribution after a
  mode change. Within one computation modes are read-only; the engine
  calls this from ``request_leave`` — the open-system session-end event —
  because the per-target Φ bucketing makes the flip an O(1) repricing.

Maintained structures:

* an edge multiset with per-``(src, dst, kind, belief)`` counts, indexed
  by source process (so an exiting process's edges purge in O(deg));
* per-node out/in partner indices (``pid → partner → multiplicity``) —
  the ``SINGLE`` oracle's partner set becomes an O(deg) dictionary read;
* the potential Φ of Lemma 3 as a running counter, bucketed by target
  pid and (normalized) believed mode, so each edge delta is O(1) and a
  mode reprice touches only that pid's incident beliefs;
* weak connectivity via an epoch-based union-find: edge additions union
  incrementally; a deletion that kills the last parallel copy of an
  undirected pair only records the pair as *dead*. At the next
  connectivity query each dead pair gets the cheap bridge-candidate
  test — endpoints sharing a surviving common neighbour exhibit a
  2-edge path, so the union-find cannot over-merge — and only a pair
  failing it invalidates the epoch, triggering a lazy rebuild from the
  maintained pair counts (O(V + distinct pairs), no edge expansion).
  Deferring the test to query time is what absorbs the protocols'
  dominant churn pattern: a reference dequeued from a channel and
  immediately stored (implicit edge dies, same explicit pair reappears
  within one atomic step) never costs a rebuild.

Invariant (enforced by the differential property tests): at every step,
``LiveGraph ≡ rebuild(state)`` — materializing a
:class:`ProcessGraph` from the live counters is step-for-step identical,
as an edge multiset and in every derived predicate, to a from-scratch
rebuild of the engine state.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING

from repro.graphs.connectivity import UnionFind
from repro.graphs.snapshot import Edge, EdgeKind, NodeView, ProcessGraph
from repro.sim.refs import pid_of
from repro.sim.states import Mode, PState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine
    from repro.sim.messages import Message
    from repro.sim.process import Process

__all__ = ["LiveGraph", "explicit_fingerprint"]

#: Edge-multiset key: (dst, kind, raw belief). Keyed per source process.
_EdgeKey = tuple[int, EdgeKind, "Mode | None"]

#: Explicit-edge fingerprint / delta key: (dst pid, stored belief).
_RefKey = tuple[int, "Mode | None"]


def _normalize(belief: Mode | None) -> Mode:
    """Missing beliefs count as *staying* claims (Φ convention; see
    :meth:`ProcessGraph.iter_invalid_edges`)."""
    return belief if belief is not None else Mode.STAYING


def explicit_fingerprint(proc: Process) -> Counter[_RefKey]:
    """Multiset of *proc*'s explicit edges as ``(dst, belief)`` counts.

    Taken by the engine before and after each atomic action; the
    difference is exactly the set of ref store/drop deltas the action
    performed on its own local memory.
    """

    return Counter((pid_of(info.ref), info.mode) for info in proc.stored_refs())


class LiveGraph:
    """Event-sourced, O(Δ)-maintained view of the process multigraph."""

    __slots__ = (
        "_mode",
        "_pstate",
        "_channel_len",
        "_edges_by_src",
        "_out",
        "_in",
        "_phi_buckets",
        "_phi",
        "_edge_total",
        "_pending_total",
        "_pair_counts",
        "_dead_pairs",
        "_uf",
        "_uf_stale",
    )

    def __init__(self, engine: Engine) -> None:
        #: immutable per-pid mode (defined even for gone processes — Φ
        #: counts edges whose target already left).
        self._mode: dict[int, Mode] = {}
        self._pstate: dict[int, PState] = {}
        self._channel_len: dict[int, int] = {}
        #: src → {(dst, kind, belief) → count}; only non-gone sources.
        self._edges_by_src: dict[int, dict[_EdgeKey, int]] = {}
        #: src → {dst → multiplicity} and the reverse index.
        self._out: dict[int, dict[int, int]] = {}
        self._in: dict[int, dict[int, int]] = {}
        #: dst → {normalized belief → count of incident edges}.
        self._phi_buckets: dict[int, dict[Mode, int]] = {}
        self._phi = 0
        self._edge_total = 0
        self._pending_total = 0
        #: unordered pair (a < b) → number of parallel edge copies.
        self._pair_counts: dict[tuple[int, int], int] = {}
        #: pairs whose last copy died since the union-find was last
        #: trusted; bridge-tested lazily at the next connectivity query.
        self._dead_pairs: set[tuple[int, int]] = set()
        self._uf: UnionFind = UnionFind()
        self._uf_stale = True
        self._build(engine)

    # ------------------------------------------------------------------ build

    def _build(self, engine: Engine) -> None:
        """Full scan of the engine state — done once, at attach time.

        Everything afterwards arrives as deltas.
        """

        for pid, proc in engine.processes.items():
            self._mode[pid] = proc.mode
            self._pstate[pid] = proc.state
            self._channel_len[pid] = len(engine.channels[pid])
            self._edges_by_src[pid] = {}
            self._out[pid] = {}
            self._in.setdefault(pid, {})
            self._phi_buckets.setdefault(pid, {})
        for pid, proc in engine.processes.items():
            self._pending_total += len(engine.channels[pid])
            if proc.state is PState.GONE:
                continue
            for info in proc.stored_refs():
                self._add_edge(pid, pid_of(info.ref), EdgeKind.EXPLICIT, info.mode)
            for msg in engine.channels[pid]:
                for dst, belief in msg.edge_pairs():
                    self._add_edge(pid, dst, EdgeKind.IMPLICIT, belief)

    # ------------------------------------------------------------------ edge deltas

    def _add_edge(
        self, src: int, dst: int, kind: EdgeKind, belief: Mode | None, count: int = 1
    ) -> None:
        key: _EdgeKey = (dst, kind, belief)
        store = self._edges_by_src[src]
        store[key] = store.get(key, 0) + count
        out = self._out[src]
        out[dst] = out.get(dst, 0) + count
        inn = self._in.setdefault(dst, {})
        inn[src] = inn.get(src, 0) + count
        self._edge_total += count
        # Φ: bucketed by target pid so a reprice touches only one pid.
        nb = _normalize(belief)
        bucket = self._phi_buckets.setdefault(dst, {})
        bucket[nb] = bucket.get(nb, 0) + count
        if nb is not self._mode[dst]:
            self._phi += count
        # Connectivity: self-loops and edges to gone targets never count.
        if src != dst and self._pstate.get(dst) is not PState.GONE:
            pair = (src, dst) if src < dst else (dst, src)
            self._pair_counts[pair] = self._pair_counts.get(pair, 0) + count
            self._dead_pairs.discard(pair)
            if not self._uf_stale:
                self._uf.union(src, dst)

    def _remove_edge(
        self, src: int, dst: int, kind: EdgeKind, belief: Mode | None, count: int = 1
    ) -> None:
        key: _EdgeKey = (dst, kind, belief)
        store = self._edges_by_src[src]
        left = store[key] - count
        if left:
            store[key] = left
        else:
            del store[key]
        out = self._out[src]
        left = out[dst] - count
        if left:
            out[dst] = left
        else:
            del out[dst]
        inn = self._in[dst]
        left = inn[src] - count
        if left:
            inn[src] = left
        else:
            del inn[src]
        self._edge_total -= count
        nb = _normalize(belief)
        bucket = self._phi_buckets[dst]
        left = bucket[nb] - count
        if left:
            bucket[nb] = left
        else:
            del bucket[nb]
        if nb is not self._mode[dst]:
            self._phi -= count
        if src != dst and self._pstate.get(dst) is not PState.GONE:
            pair = (src, dst) if src < dst else (dst, src)
            left = self._pair_counts[pair] - count
            if left:
                self._pair_counts[pair] = left
            else:
                del self._pair_counts[pair]
                # Last parallel copy of the pair died; the union-find may
                # now over-merge. Defer the judgment: the pair usually
                # reappears within the same atomic step (dequeue → store),
                # and the bridge-candidate test runs at the next query.
                if not self._uf_stale:
                    self._dead_pairs.add(pair)

    def _neighbours(self, pid: int) -> set[int]:
        """Live undirected neighbours of *pid* (non-gone, no self)."""
        found: set[int] = set()
        for q in self._out.get(pid, ()):
            if q != pid and self._pstate.get(q) is not PState.GONE:
                found.add(q)
        for q in self._in.get(pid, ()):
            if q != pid and self._pstate.get(q) is not PState.GONE:
                found.add(q)
        return found

    def _share_neighbour(self, a: int, b: int) -> bool:
        na, nb = self._neighbours(a), self._neighbours(b)
        if len(nb) < len(na):
            na, nb = nb, na
        return any(q in nb for q in na)

    # ------------------------------------------------------------------ deltas

    def on_enqueue(self, pid: int, msg: Message) -> None:
        """A message entered ``pid.Ch`` (implicit edges appear)."""
        self._channel_len[pid] = self._channel_len.get(pid, 0) + 1
        self._pending_total += 1
        if self._pstate.get(pid) is PState.GONE:
            return  # gone processes are outside PG; their mail is inert
        # The int-pair delta feed: no Ref objects, no generator chain —
        # the pairs were computed once when the message was first seen.
        for dst, belief in msg.edge_pairs():
            self._add_edge(pid, dst, EdgeKind.IMPLICIT, belief)

    def on_dequeue(self, pid: int, msg: Message) -> None:
        """A message left ``pid.Ch`` (implicit edges disappear)."""
        self._channel_len[pid] -= 1
        self._pending_total -= 1
        if self._pstate.get(pid) is PState.GONE:
            return
        for dst, belief in msg.edge_pairs():
            self._remove_edge(pid, dst, EdgeKind.IMPLICIT, belief)

    def apply_explicit_diff(
        self, pid: int, before: Counter[_RefKey], proc: Process
    ) -> None:
        """Commit the acting process's ref store/drop deltas.

        *before* is the :func:`explicit_fingerprint` taken when the action
        started; the current ``stored_refs()`` of *proc* is the after
        image. Cost is O(deg) of the acting process — the Δ of the step.
        """

        after = explicit_fingerprint(proc)
        if after == before:
            return
        for (dst, belief), count in before.items():
            extra = count - after.get((dst, belief), 0)
            if extra > 0:
                self._remove_edge(pid, dst, EdgeKind.EXPLICIT, belief, extra)
        for (dst, belief), count in after.items():
            extra = count - before.get((dst, belief), 0)
            if extra > 0:
                self._add_edge(pid, dst, EdgeKind.EXPLICIT, belief, extra)

    def apply_ref_deltas(self, pid: int, deltas: dict[_RefKey, int]) -> None:
        """Commit net explicit-edge deltas recorded write-through.

        *deltas* is a drained :class:`~repro.sim.refs.RefDeltaLog`
        ``pending`` dict: ``(dst_pid, belief) → ±count`` accumulated by
        the acting process's tracked ref containers during one atomic
        action. Equivalent to :meth:`apply_explicit_diff` with the
        before/after fingerprints, but O(writes) instead of O(refs) —
        no fingerprint is ever taken.
        """

        for (dst, belief), count in deltas.items():
            if count > 0:
                self._add_edge(pid, dst, EdgeKind.EXPLICIT, belief, count)
            elif count < 0:
                self._remove_edge(pid, dst, EdgeKind.EXPLICIT, belief, -count)

    def on_state(self, pid: int, state: PState) -> None:
        """Lifecycle delta: exit purges the pid's out-edges; sleep/wake
        only flips the state consulted by relevance queries."""

        old = self._pstate.get(pid)
        self._pstate[pid] = state
        if state is PState.GONE and old is not PState.GONE:
            # Out-edges leave PG with the process (its stored refs and
            # channel content remain physically present but unobservable).
            for (dst, kind, belief), count in list(
                self._edges_by_src.get(pid, {}).items()
            ):
                self._remove_edge(pid, dst, kind, belief, count)
            # In-edges from live processes survive in the multiset (Φ still
            # counts them) but stop carrying connectivity; the union-find
            # must forget the node entirely.
            self._uf_stale = True

    def on_admit(self, pid: int, proc: Process) -> None:
        """Open-system join: *pid* enters the system mid-run.

        The newcomer arrives with an empty channel and whatever explicit
        edges its pre-seeded neighbourhood variables already hold (the
        engine has validated that every target exists). The union-find
        gains a node lazily — marking the epoch stale is correct and
        costs one rebuild at the next connectivity query, amortized over
        the whole admission burst.
        """

        self._mode[pid] = proc.mode
        self._pstate[pid] = proc.state
        self._channel_len[pid] = 0
        self._edges_by_src[pid] = {}
        self._out[pid] = {}
        self._in.setdefault(pid, {})
        self._phi_buckets.setdefault(pid, {})
        # Stale FIRST: _add_edge eagerly unions into a non-stale union-find,
        # which does not contain the newcomer yet.
        self._uf_stale = True
        for info in proc.stored_refs():
            self._add_edge(pid, pid_of(info.ref), EdgeKind.EXPLICIT, info.mode)

    def on_reap(self, pid: int) -> None:
        """Open-system reclaim: gone, unreferenced *pid* leaves entirely.

        The engine guarantees the precondition (no other process stores
        or carries a reference to *pid*), so the pid's in-edge index and
        Φ buckets are already empty and its out-edges were purged when it
        went gone. Only its (inert) channel backlog still counts — drop
        it from the pending total. The pid keeps its ``GONE`` tombstone:
        ``_pair_counts`` may still name it from before its exit, and the
        connectivity rebuild skips pairs with gone endpoints.
        """

        self._pending_total -= self._channel_len.pop(pid, 0)

    def reprice(self, pid: int, new_mode: Mode) -> None:
        """Re-derive Φ's contribution from edges into *pid* after a mode
        change, touching only that pid's belief buckets.

        Called by ``Engine.request_leave`` — the open-system event that
        flips a session's mode to leaving: beliefs about *pid* attached
        to in-flight messages and stored refs may change validity, and
        the per-target bucketing makes that an O(1) repricing.
        """

        self._phi -= self._phi_for(pid)
        self._mode[pid] = new_mode
        self._phi += self._phi_for(pid)

    def _phi_for(self, pid: int) -> int:
        """Φ contribution of the edges currently pointing at *pid*."""
        actual = self._mode[pid]
        return sum(
            c for b, c in self._phi_buckets.get(pid, {}).items() if b is not actual
        )

    def phi_by_subject(self) -> dict[int, int]:
        """Φ broken down by the process the invalid information is *about*.

        ``{y: count}`` over edges ``(x, y)`` whose attached belief differs
        from ``mode(y)`` — read straight from the per-target Φ buckets,
        O(targets with incident edges). Zero contributions are omitted, so
        ``sum(...) == phi``.
        """

        out: dict[int, int] = {}
        for pid in self._phi_buckets:
            contribution = self._phi_for(pid)
            if contribution:
                out[pid] = contribution
        return out

    def phi_by_holder(self) -> dict[int, int]:
        """Φ broken down by the process *holding* the invalid information.

        ``{x: count}`` over edges ``(x, y)`` whose attached belief differs
        from ``mode(y)`` — who still stores or carries stale knowledge,
        the "who is blocking the drain" view used in livelock diagnosis.
        Requires a scan of the edge multiset (O(distinct edge keys)); an
        analysis query, not a per-step probe.
        """

        out: dict[int, int] = {}
        for src, store in self._edges_by_src.items():
            total = 0
            for (dst, _kind, belief), count in store.items():
                if _normalize(belief) is not self._mode[dst]:
                    total += count
            if total:
                out[src] = total
        return out

    # ------------------------------------------------------------------ queries

    @property
    def phi(self) -> int:
        """The potential Φ of Lemma 3, maintained as a running counter."""
        return self._phi

    @property
    def edge_total(self) -> int:
        """Number of edges in PG (parallel copies and self-loops counted)."""
        return self._edge_total

    @property
    def pending_total(self) -> int:
        """Messages pending across *all* channels (gone pids included)."""
        return self._pending_total

    def state_of(self, pid: int) -> PState:
        return self._pstate[pid]

    def alive_pids(self) -> list[int]:
        return [p for p, s in self._pstate.items() if s is not PState.GONE]

    def partners(self, pid: int) -> set[int]:
        """Non-gone processes (≠ *pid*) sharing an edge with *pid* — the
        SINGLE oracle's partner index, read in O(deg)."""

        if self._pstate.get(pid) is PState.GONE:
            return set()
        found = self._neighbours(pid)
        return found

    # -- connectivity ---------------------------------------------------------

    def _fresh_uf(self) -> UnionFind:
        if not self._uf_stale and self._dead_pairs:
            # Bridge-candidate test per dead pair: a surviving common
            # live neighbour exhibits a 2-edge path between the
            # endpoints, so the union-find's historical merge is still
            # sound; any pair without one forces an epoch rebuild.
            for a, b in self._dead_pairs:
                if not self._share_neighbour(a, b):
                    self._uf_stale = True
                    break
            self._dead_pairs.clear()
        if self._uf_stale:
            uf = UnionFind(
                p for p, s in self._pstate.items() if s is not PState.GONE
            )
            for (a, b), _count in self._pair_counts.items():
                if (
                    self._pstate.get(a) is not PState.GONE
                    and self._pstate.get(b) is not PState.GONE
                ):
                    uf.union(a, b)
            self._uf = uf
            self._uf_stale = False
            self._dead_pairs.clear()
        return self._uf

    def same_component(self, members: Iterable[int]) -> bool:
        """Whether *members* (non-gone pids) share one weakly connected
        component of the full live graph.

        Exact for the Lemma 2 check on sleeper-free runs: under
        copy-store-send protocols initial components never merge, so a
        path between members cannot leave their initial component, and
        with no sleepers every same-component node is itself a member.
        """

        it = iter(members)
        try:
            first = next(it)
        except StopIteration:
            return True
        uf = self._fresh_uf()
        root = uf.find(first)
        return all(uf.find(pid) == root for pid in it)

    def n_components(self) -> int:
        """Number of weakly connected components among non-gone processes."""
        return self._fresh_uf().n_sets

    def induced_connected(
        self, members: frozenset[int], via: frozenset[int] = frozenset()
    ) -> bool:
        """Whether all *members* lie in one weakly connected component of
        the subgraph induced on ``members | via`` — the exact predicate
        the monitors need when hibernating processes must be excluded
        (O(Σ deg(members ∪ via)), no snapshot).

        *via* nodes are passage only: paths through them count (the
        open-system monitors pass the relevant mid-run admissions here),
        but their own connectivity is not required."""

        if len(members) <= 1:
            return True
        allowed = members | via
        uf = UnionFind(allowed)
        for a in allowed:
            for b in self._out.get(a, ()):
                if b != a and b in allowed:
                    uf.union(a, b)
        root = None
        for m in members:
            r = uf.find(m)
            if root is None:
                root = r
            elif r != root:
                return False
        return True

    # -- relevance (hibernation) ---------------------------------------------

    def hibernating(self) -> frozenset[int]:
        """Fixpoint of the hibernation definition over the live indices
        (quiet-asleep processes not reachable from any non-quiet one)."""

        quiet = {
            pid
            for pid, s in self._pstate.items()
            if s is PState.ASLEEP and self._channel_len.get(pid, 0) == 0
        }
        if not quiet:
            return frozenset()
        changed = True
        while changed:
            changed = False
            for pid in list(quiet):
                for src in self._in.get(pid, ()):
                    if src not in quiet and self._pstate.get(src) is not PState.GONE:
                        quiet.discard(pid)
                        changed = True
                        break
        return frozenset(quiet)

    def relevant(self) -> frozenset[int]:
        """Non-gone, non-hibernating pids."""
        return frozenset(
            p for p, s in self._pstate.items() if s is not PState.GONE
        ) - self.hibernating()

    # ------------------------------------------------------------------ materialize

    def iter_edges(self) -> Iterator[Edge]:
        """Expand the counted multiset into concrete :class:`Edge` values."""
        for src, store in self._edges_by_src.items():
            for (dst, kind, belief), count in store.items():
                edge = Edge(src, dst, kind, belief)
                for _ in range(count):
                    yield edge

    def materialize(self) -> ProcessGraph:
        """An immutable :class:`ProcessGraph` equal to a from-scratch
        rebuild of the current state — the analysis/test-oracle view,
        built on demand from the live counters."""

        nodes = [
            NodeView(
                pid=pid,
                mode=self._mode[pid],
                state=state,
                channel_len=self._channel_len.get(pid, 0),
            )
            for pid, state in self._pstate.items()
            if state is not PState.GONE
        ]
        return ProcessGraph(nodes, self.iter_edges())

    def __repr__(self) -> str:
        return (
            f"LiveGraph(n={len(self._pstate)}, m={self._edge_total}, "
            f"phi={self._phi}, pending={self._pending_total})"
        )
