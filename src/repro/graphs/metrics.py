"""Structural metrics over edge lists and snapshots.

Used by the analysis layer to characterize workloads (how dense was the
initial topology?) and outcomes (what does the staying subgraph look like
after convergence?). Vectorized with numpy where the arrays are large
enough to matter, per the HPC guides; the small-graph paths stay in plain
Python for clarity.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Mapping

import numpy as np

__all__ = [
    "degree_stats",
    "undirected_view",
    "eccentricities",
    "diameter",
    "edge_count",
    "density",
    "is_sorted_line",
    "is_sorted_ring",
    "is_clique",
    "is_star",
]

EdgeIter = Iterable[tuple[int, int]]


def undirected_view(edges: EdgeIter, nodes: Iterable[int]) -> dict[int, set[int]]:
    """Symmetrized adjacency over *nodes*; edges to outsiders dropped."""
    adj: dict[int, set[int]] = {n: set() for n in nodes}
    for a, b in edges:
        if a in adj and b in adj and a != b:
            adj[a].add(b)
            adj[b].add(a)
    return adj


def degree_stats(edges: EdgeIter, nodes: Iterable[int]) -> dict[str, float]:
    """Out-degree distribution statistics: min/mean/max/std."""
    nodes = list(nodes)
    out: dict[int, int] = {n: 0 for n in nodes}
    for a, _ in edges:
        if a in out:
            out[a] += 1
    degrees = np.fromiter(out.values(), dtype=np.int64, count=len(out))
    if degrees.size == 0:
        return {"min": 0.0, "mean": 0.0, "max": 0.0, "std": 0.0}
    return {
        "min": float(degrees.min()),
        "mean": float(degrees.mean()),
        "max": float(degrees.max()),
        "std": float(degrees.std()),
    }


def eccentricities(adj: Mapping[int, set[int]]) -> dict[int, int]:
    """BFS eccentricity of every node (∞ encoded as -1 for unreachable)."""
    ecc: dict[int, int] = {}
    for source in adj:
        dist = {source: 0}
        frontier = deque([source])
        far = 0
        while frontier:
            node = frontier.popleft()
            for nb in adj[node]:
                if nb not in dist:
                    dist[nb] = dist[node] + 1
                    far = max(far, dist[nb])
                    frontier.append(nb)
        ecc[source] = far if len(dist) == len(adj) else -1
    return ecc


def diameter(adj: Mapping[int, set[int]]) -> int:
    """Undirected diameter; -1 if disconnected; 0 for ≤1 node."""
    if len(adj) <= 1:
        return 0
    ecc = eccentricities(adj)
    values = list(ecc.values())
    if any(v < 0 for v in values):
        return -1
    return max(values)


def edge_count(edges: EdgeIter) -> int:
    """Number of edges in the iterable."""
    return sum(1 for _ in edges)


def density(edges: EdgeIter, n: int) -> float:
    """Directed density m / (n·(n-1)); 0 for n < 2."""
    if n < 2:
        return 0.0
    return edge_count(edges) / (n * (n - 1))


# -- target-topology recognizers (overlay convergence checks) ---------------------


def is_sorted_line(edges: frozenset[tuple[int, int]], keys: Mapping[int, float]) -> bool:
    """Whether *edges* is exactly the doubly linked list sorted by *keys*."""
    order = sorted(keys, key=keys.__getitem__)
    want: set[tuple[int, int]] = set()
    for a, b in zip(order, order[1:], strict=False):
        want.add((a, b))
        want.add((b, a))
    return set(edges) == want


def is_sorted_ring(edges: frozenset[tuple[int, int]], keys: Mapping[int, float]) -> bool:
    """Whether *edges* is the successor cycle of the key order (n ≥ 2)."""
    order = sorted(keys, key=keys.__getitem__)
    if len(order) < 2:
        return len(edges) == 0
    want = {(a, b) for a, b in zip(order, order[1:] + order[:1], strict=True)}
    return set(edges) == want


def is_clique(edges: frozenset[tuple[int, int]], nodes: Iterable[int]) -> bool:
    """Whether *edges* contains every ordered pair over *nodes*."""
    nodes = list(nodes)
    want = {(a, b) for a in nodes for b in nodes if a != b}
    return want <= set(edges)


def is_star(edges: frozenset[tuple[int, int]], nodes: Iterable[int], center: int) -> bool:
    """Whether *edges* is exactly the bidirected star around *center*."""
    nodes = [n for n in nodes if n != center]
    want: set[tuple[int, int]] = set()
    for n in nodes:
        want.add((center, n))
        want.add((n, center))
    return set(edges) == want
