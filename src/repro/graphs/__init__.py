"""Graph substrate: process-graph snapshots, connectivity, generators, metrics.

Everything here is implemented from scratch (union-find, iterative Tarjan,
BFS); networkx appears only in the test-suite as an independent oracle.
"""

from repro.graphs.connectivity import (
    UnionFind,
    bfs_shortest_path,
    is_strongly_connected,
    is_weakly_connected,
    reachable_from,
    reverse_reachable,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.graphs.generators import GENERATORS
from repro.graphs.livegraph import LiveGraph
from repro.graphs.snapshot import Edge, EdgeKind, NodeView, ProcessGraph

__all__ = [
    "Edge",
    "EdgeKind",
    "GENERATORS",
    "LiveGraph",
    "NodeView",
    "ProcessGraph",
    "UnionFind",
    "bfs_shortest_path",
    "is_strongly_connected",
    "is_weakly_connected",
    "reachable_from",
    "reverse_reachable",
    "strongly_connected_components",
    "weakly_connected_components",
]
