#!/usr/bin/env python3
"""The Finite Sleep Problem: departures without an oracle.

In the FSP the irreversible ``exit`` is unavailable; leaving processes
``sleep`` instead, and wake whenever a message addressed to them is
processed. No oracle is needed, because sleeping is harmless: if someone
still references a sleeper, their next self-introduction wakes it up.

This example runs the FSP protocol from a heavily corrupted state, shows
the wake/sleep churn while stale references drain, verifies that the
system reaches a legitimate state (every leaving process *hibernating* —
asleep, empty channel, unreachable from any active process), and then
demonstrates the paper's closure claim: hibernating processes are
permanently asleep, and waking one deliberately (by injecting a message,
i.e. violating the closed system) is handled gracefully.

Run:  python examples/fsp_sleep_wakeup.py
"""

from repro.core.potential import fsp_legitimate
from repro.core.scenarios import HEAVY_CORRUPTION, build_fsp_engine, choose_leaving
from repro.analysis.tables import format_kv
from repro.graphs import generators
from repro.sim.messages import RefInfo
from repro.sim.states import Mode, PState


def main() -> None:
    n = 20
    edges = generators.lollipop(n)
    leaving = choose_leaving(n, edges, fraction=0.4, seed=11)
    engine = build_fsp_engine(
        n, edges, leaving, seed=11, corruption=HEAVY_CORRUPTION
    )
    print(f"{n} processes, leaving: {sorted(leaving)}, initial Φ = {engine.potential()}")

    ok = engine.run(1_000_000, until=fsp_legitimate, check_every=64)
    assert ok, "the FSP protocol must reach a legitimate state without an oracle"

    snap = engine.snapshot()
    hibernating = snap.hibernating()
    print(
        format_kv(
            {
                "steps": engine.step_count,
                "sleep transitions": engine.stats.sleeps,
                "wake transitions (churn while stabilizing)": engine.stats.wakes,
                "hibernating processes": len(hibernating),
                "exits (impossible in FSP)": engine.stats.exits,
            },
            title="convergence",
        )
    )

    # Closure: hibernating processes never wake again on their own.
    wakes_before = engine.stats.wakes
    for _ in range(2_000):
        if engine.step() is None:
            break
        assert fsp_legitimate(engine)
    assert engine.stats.wakes == wakes_before
    print("\nclosure: 2000 further steps, zero spontaneous wake-ups ✓")

    # Now break the closed-system assumption on purpose: hand a sleeper a
    # message. It wakes, handles it per the protocol, and goes back to
    # sleep — eventually hibernating again.
    sleeper = min(hibernating)
    some_stayer = next(
        pid for pid, p in engine.processes.items() if p.mode is Mode.STAYING
    )
    engine.post(
        None,
        engine.ref(sleeper),
        "present",
        (RefInfo(engine.ref(some_stayer), Mode.STAYING),),
    )
    assert engine.run(100_000, until=fsp_legitimate, check_every=32)
    assert engine.processes[sleeper].state is PState.ASLEEP
    print(
        f"injected wake-up of process {sleeper}: handled, re-hibernated, "
        f"system legitimate again ✓ (total wakes now {engine.stats.wakes})"
    )


if __name__ == "__main__":
    main()
