#!/usr/bin/env python3
"""A peer-to-peer ring under churn: waves of peers leaving safely.

Models the motivating scenario of the paper's introduction: a running
P2P overlay — here the sorted ring, the base topology of Chord-style
systems — from which peers continuously request to leave. The overlay's
maintenance protocol is embedded in the Section 4 departure framework, so
leavers are excluded without ever risking disconnection while the ring
keeps stabilizing for the stayers.

Because the paper's model fixes each process's mode, churn is simulated
as a sequence of *epochs* (see :class:`repro.analysis.churn.ChurnSimulation`):
each epoch marks a fresh subset of the survivors as leaving, re-wires the
survivors with the topology the previous epoch converged to, re-injects
transient faults, and runs P′ until both obligations of Theorem 4 hold
again (leavers gone ∧ ring correct).

Run:  python examples/churn_p2p_network.py
"""

from repro.analysis.churn import ChurnSimulation
from repro.analysis.tables import format_table
from repro.core.scenarios import Corruption
from repro.graphs import generators
from repro.overlays.ring import RingLogic


def main() -> None:
    n = 20
    sim = ChurnSimulation(
        RingLogic,
        n,
        generators.random_connected(n, extra_edges=10, seed=7),
        churn_rate=0.2,
        corruption=Corruption(belief_lie_prob=0.15, garbage_per_process=0.5),
        seed=7,
    )
    results = sim.run(epochs=4, min_population=6)

    print(
        format_table(
            ["epoch", "peers", "leaving", "safe", "steps", "messages", "survivors"],
            sim.rows(),
            title="P2P churn: per-epoch safe exclusion (sorted ring + FDP framework)",
        )
    )
    assert all(r.converged for r in results), "every epoch must converge safely"
    print(f"\nring intact after {len(results)} churn epochs, "
          f"{n - len(sim.pids)} peers excluded safely ✓")


if __name__ == "__main__":
    main()
