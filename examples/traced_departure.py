#!/usr/bin/env python3
"""A microscope on the protocol: every step of a 3-process departure.

Runs the smallest interesting FDP instance — staying ⟷ leaving ⟷ staying
on a line, with the leaver in the middle (exactly the disconnection risk
the SINGLE oracle guards) — under the deterministic oldest-first
scheduler, printing every executed action, the potential Φ and the
process states. Ends with the full event trace so you can follow the
pseudocode of Algorithms 1–3 line by line.

Run:  python examples/traced_departure.py
"""

from repro.analysis.render import render_adjacency_list, render_modes
from repro.core.fdp import FDPProcess
from repro.core.oracles import SingleOracle
from repro.core.potential import fdp_legitimate
from repro.sim.engine import Engine
from repro.sim.scheduler import OldestFirstScheduler
from repro.sim.states import Capability, Mode
from repro.sim.tracing import Tracer


def main() -> None:
    staying_a = FDPProcess(0, Mode.STAYING)
    leaver = FDPProcess(1, Mode.LEAVING)
    staying_b = FDPProcess(2, Mode.STAYING)
    # the line 0 → 1 → 2, plus the back edges, with one wrong belief:
    # process 0 thinks the leaver is staying (transient fault)
    staying_a.N[leaver.self_ref] = Mode.STAYING  # ← invalid information!
    leaver.N[staying_a.self_ref] = Mode.STAYING
    leaver.N[staying_b.self_ref] = Mode.STAYING
    staying_b.N[leaver.self_ref] = Mode.LEAVING

    tracer = Tracer()
    engine = Engine(
        [staying_a, leaver, staying_b],
        OldestFirstScheduler(),
        capability=Capability.EXIT,
        oracle=SingleOracle(),
        tracer=tracer,
    )

    print(render_adjacency_list(engine, title="initial state:"))
    print(f"\ninitial Φ = {engine.potential()} (process 0 holds a lie)\n")

    print(f"{'step':>4}  {'event':<28} {'Φ':>2}  states")
    engine.attach()
    while not fdp_legitimate(engine):
        executed = engine.step()
        assert executed is not None
        what = (
            f"timeout @ {executed.pid}"
            if executed.kind == "timeout"
            else f"{executed.label}(…) @ {executed.pid}"
        )
        print(
            f"{engine.step_count:>4}  {what:<28} {engine.potential():>2}  "
            f"{render_modes(engine)}"
        )
        if engine.step_count > 200:
            raise RuntimeError("unexpectedly long run")

    print(f"\n{render_adjacency_list(engine, title='legitimate state:')}")
    print(
        f"\nthe leaver is gone after {engine.step_count} steps; "
        f"the stayers are connected directly: "
        f"{engine.snapshot().is_weakly_connected(frozenset({0, 2}))} ✓"
    )
    delivered = [e.label for e in tracer.events if e.label]
    print(
        f"messages processed: {len(delivered)} "
        f"({delivered.count('present')} present, {delivered.count('forward')} forward)"
    )


if __name__ == "__main__":
    main()
