#!/usr/bin/env python3
"""Section 4 end-to-end: a sorted-list overlay that safely sheds leavers.

Takes the self-stabilizing linearization protocol (a member of the class
𝒫 — all its actions decompose into the four primitives), wraps it in the
departure framework (P′ = framework(P)), and runs a mixed population on a
scrambled topology. The run ends when BOTH Theorem 4 obligations hold:

* the FDP is solved — every leaving process exited safely, and
* P still did its job — the staying processes form the sorted doubly
  linked list.

The before/after adjacency rendering makes the reshaping visible.

Run:  python examples/overlay_with_departures.py
"""

from repro.core.potential import fdp_legitimate
from repro.core.scenarios import LIGHT_CORRUPTION, build_framework_engine, choose_leaving
from repro.analysis.tables import format_kv
from repro.graphs import generators
from repro.overlays.linearization import LinearizationLogic
from repro.sim.monitors import ConnectivityMonitor
from repro.sim.states import Mode, PState


def render_adjacency(engine, title):
    from repro.analysis.render import render_adjacency_list

    print(render_adjacency_list(engine, title=title))
    print()


def main() -> None:
    n = 16
    edges = generators.random_connected(n, extra_edges=10, seed=3)
    leaving = choose_leaving(n, edges, fraction=0.3, seed=3)

    engine = build_framework_engine(
        n,
        edges,
        leaving,
        LinearizationLogic,
        seed=3,
        corruption=LIGHT_CORRUPTION,
        monitors=[ConnectivityMonitor(check_every=8)],
    )
    render_adjacency(engine, f"before (leaving: {sorted(leaving)}):")

    def theorem4_done(e):
        return fdp_legitimate(e) and LinearizationLogic.target_reached(e)

    ok = engine.run(2_000_000, until=theorem4_done, check_every=256)
    assert ok, "P′ must solve both the FDP and P's own problem"
    render_adjacency(engine, "after (sorted doubly linked list of stayers):")

    print(
        format_kv(
            {
                "steps": engine.step_count,
                "messages": engine.stats.messages_posted,
                "exits": engine.stats.exits,
                "leaving processes": len(leaving),
                "sorted list reached": LinearizationLogic.target_reached(engine),
            },
            title="Theorem 4 summary",
        )
    )


if __name__ == "__main__":
    main()
