#!/usr/bin/env python3
"""Theorem 1 in action: morphing overlay topologies with the four primitives.

The paper's universality result is constructive: any weakly connected
graph can be transformed into any other using only Introduction,
Delegation, Fusion and Reversal — each of which provably preserves weak
connectivity. This example plans and replays transformations between
classic overlay topologies, printing the schedule composition and
verifying connectivity at every intermediate step.

It also measures the Phase-A clique-formation rounds, the quantity the
proof bounds by O(log n) ("distances are essentially cut in half in each
round of introduction").

Run:  python examples/universal_transformation.py
"""

import math

from repro import plan_transformation, rounds_to_clique
from repro.analysis.tables import format_series, format_table
from repro.graphs import generators


def main() -> None:
    n = 12
    shapes = {
        "line": generators.bidirected_line(n),
        "ring": generators.ring(n),
        "star": generators.star(n),
        "tree": generators.binary_tree(n),
    }

    rows = []
    for src_name, src in shapes.items():
        for dst_name, dst in shapes.items():
            if src_name == dst_name:
                continue
            plan = plan_transformation(range(n), src, dst)
            # replay with per-step Lemma 1 verification
            result = plan.replay(check_connectivity=True)
            assert result.simple_edges() == frozenset(dst)
            counts = plan.counts()
            rows.append(
                [
                    f"{src_name}→{dst_name}",
                    len(plan),
                    plan.clique_rounds,
                    counts["introduction"] + counts["self_introduction"],
                    counts["delegation"],
                    counts["fusion"],
                    counts["reversal"],
                ]
            )
    print(
        format_table(
            ["transformation", "ops", "rounds", "intro", "deleg", "fuse", "rev"],
            rows,
            title=f"Theorem 1 schedules between {n}-node topologies (verified)",
        )
    )

    # Phase A scaling: rounds to clique vs n on the line (worst diameter).
    ns = [4, 8, 16, 32, 64]
    rounds = [
        float(rounds_to_clique(range(k), generators.bidirected_line(k))) for k in ns
    ]
    bound = [math.ceil(math.log2(k)) + 1 for k in ns]
    print()
    print(
        format_series(
            "n",
            ns,
            {"rounds_to_clique": rounds, "ceil(log2 n)+1": [float(b) for b in bound]},
            title="Phase A: introduction rounds until the clique (O(log n))",
        )
    )
    assert all(r <= b for r, b in zip(rounds, bound))


if __name__ == "__main__":
    main()
