#!/usr/bin/env python3
"""Quickstart: safely excluding leaving nodes from an overlay network.

Builds a 32-process overlay on a random weakly connected topology, marks a
handful of processes as *leaving*, corrupts the initial state (wrong mode
beliefs, stale in-flight messages, bogus anchors — the protocol is
self-stabilizing, so it must recover from all of that), and runs the
paper's FDP protocol with the SINGLE oracle until the system is
legitimate: every leaving process gone, every staying process awake, and
the staying processes still weakly connected.

Run:  python examples/quickstart.py
"""

from repro import (
    LIGHT_CORRUPTION,
    SingleOracle,
    build_fdp_engine,
    choose_leaving,
    fdp_legitimate,
)
from repro.analysis.tables import format_kv
from repro.graphs import generators
from repro.sim.monitors import ConnectivityMonitor, PotentialMonitor


def main() -> None:
    n = 32
    edges = generators.random_connected(n, extra_edges=16, seed=42)
    leaving = choose_leaving(n, edges, fraction=0.25, seed=42)
    print(f"{n} processes, {len(edges)} initial edges, leaving: {sorted(leaving)}\n")

    # The monitors assert the paper's invariants at every step: Lemma 2
    # (no disconnection of relevant processes) and Lemma 3 (the potential
    # Φ — the amount of invalid information — never increases).
    connectivity = ConnectivityMonitor(check_every=4)
    potential = PotentialMonitor(check_every=4)

    engine = build_fdp_engine(
        n,
        edges,
        leaving,
        seed=42,
        oracle=SingleOracle(),
        corruption=LIGHT_CORRUPTION,
        monitors=[connectivity, potential],
    )
    print(f"initial invalid information Φ = {engine.potential()}")

    converged = engine.run(500_000, until=fdp_legitimate, check_every=64)
    assert converged, "the FDP protocol should reach a legitimate state"

    snap = engine.snapshot()
    print(
        format_kv(
            {
                "converged": converged,
                "steps": engine.step_count,
                "messages sent": engine.stats.messages_posted,
                "exits (should equal leaving)": engine.stats.exits,
                "final Φ": engine.potential(),
                "staying weakly connected": snap.is_weakly_connected(snap.staying()),
                "connectivity checks passed": connectivity.checks,
            },
            title="run summary",
        )
    )


if __name__ == "__main__":
    main()
