"""E3 — Theorem 1: universality of the four primitives.

Claims reproduced: (a) the constructive transformation reaches any target
from any source (verified replays between all topology pairs), (b) the
Phase-A clique formation takes O(log n) introduction rounds (measured
round counts vs the log₂ bound — the shape claim: logarithmic, not
linear), and (c) schedule length scales with the edge work, dominated by
the clique phase's O(n²) introductions.
"""

import math

from benchmarks.common import emit
from repro.analysis.stats import loglog_slope
from repro.analysis.tables import format_series, format_table
from repro.core.universality import plan_transformation, rounds_to_clique
from repro.graphs import generators as gen


def plan_pairs(n: int):
    shapes = {
        "line": gen.bidirected_line(n),
        "ring": gen.ring(n),
        "star": gen.star(n),
        "tree": gen.binary_tree(n),
    }
    plans = {}
    for a, src in shapes.items():
        for b, dst in shapes.items():
            if a != b:
                plans[(a, b)] = plan_transformation(range(n), src, dst)
    return plans


def test_e3_universality(benchmark):
    n = 10
    plans = benchmark.pedantic(plan_pairs, args=(n,), iterations=1, rounds=1)

    rows = []
    for (a, b), plan in sorted(plans.items()):
        final = plan.replay()
        assert final.simple_edges() == plan.target  # universality, verified
        rows.append([f"{a}→{b}", len(plan), plan.clique_rounds])
    emit(
        "e3_universality_pairs",
        format_table(
            ["transformation", "schedule ops", "clique rounds"],
            rows,
            title=f"E3 — verified Theorem 1 schedules, n={n}",
        ),
    )

    # Round scaling on the worst-diameter start (the doubly linked list).
    ns = [4, 8, 16, 32, 64, 128]
    rounds = [
        float(rounds_to_clique(range(k), gen.bidirected_line(k))) for k in ns
    ]
    bounds = [float(math.ceil(math.log2(k)) + 1) for k in ns]
    emit(
        "e3_clique_rounds",
        format_series(
            "n",
            ns,
            {"rounds": rounds, "ceil(log2 n)+1": bounds},
            title="E3 — Phase A introduction rounds vs n (claim: O(log n))",
        ),
    )
    assert all(r <= b for r, b in zip(rounds, bounds, strict=True))
    # Shape: logarithmic growth — the log-log slope of rounds vs n must be
    # well below linear.
    assert loglog_slope(ns, rounds) < 0.5
