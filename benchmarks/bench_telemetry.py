"""Telemetry overhead benchmarks (library performance, not an experiment).

The observability subsystem promises to be cheap enough to leave on:

* the streaming JSONL trace sink (``repro.obs.trace.JsonlTraceSink``)
  must keep a fault-injected FDP run within 15% of the tracing-off
  steps/sec at n = 256 — the acceptance bound this suite enforces;
* the provenance tracker (``repro.obs.provenance.ProvenanceTracker``)
  is measured alongside for visibility (it keeps per-message lineage
  records, so its budget is looser and not gated).

Run as a module for the CI smoke check::

    PYTHONPATH=src:. python benchmarks/bench_telemetry.py --smoke

which writes ``benchmarks/results/BENCH_telemetry.json`` with steps/sec
per sink configuration and asserts the JSONL overhead bound. Each
configuration is timed best-of-``REPS`` to absorb host jitter.
"""

import argparse
import sys
import tempfile
import time
from pathlib import Path

from benchmarks.common import save_json
from repro.core.scenarios import HEAVY_CORRUPTION, build_fdp_engine, choose_leaving
from repro.graphs import generators as gen
from repro.obs.provenance import ProvenanceTracker
from repro.obs.trace import JsonlTraceSink

N = 256
STEPS = 20_000
REPS = 5
JSONL_OVERHEAD_LIMIT = 0.15


def _never(engine):
    return False


def _build(tracer=None, provenance=None):
    edges = gen.random_connected(N, 16, seed=9)
    leaving = choose_leaving(N, edges, fraction=0.3, seed=9)
    return build_fdp_engine(
        N,
        edges,
        leaving,
        seed=9,
        corruption=HEAVY_CORRUPTION,
        tracer=tracer,
        provenance=provenance,
    )


def _run_fixed(tracer=None, provenance=None) -> float:
    """One fault-injected run of STEPS steps; returns steps/sec."""
    engine = _build(tracer=tracer, provenance=provenance)
    engine.attach()
    start = time.perf_counter()
    engine.run(STEPS, until=_never)
    wall = time.perf_counter() - start
    assert engine.step_count == STEPS
    return STEPS / wall


def run_off() -> float:
    return _run_fixed()


def run_jsonl(path: str) -> float:
    with JsonlTraceSink(path) as sink:
        return _run_fixed(tracer=sink)


def run_provenance() -> float:
    return _run_fixed(provenance=ProvenanceTracker())


# --------------------------------------------------------- pytest-benchmark


def test_throughput_tracing_off(benchmark):
    rate = benchmark.pedantic(run_off, rounds=3, iterations=1)
    assert rate > 0


def test_throughput_jsonl_sink(benchmark, tmp_path):
    rate = benchmark.pedantic(
        lambda: run_jsonl(str(tmp_path / "bench.jsonl")), rounds=3, iterations=1
    )
    assert rate > 0


def test_throughput_provenance(benchmark):
    rate = benchmark.pedantic(run_provenance, rounds=3, iterations=1)
    assert rate > 0


# ----------------------------------------------------------- CI smoke entry


def smoke() -> dict:
    """Best-of-REPS steps/sec per sink configuration; returns the payload.

    The configurations are measured *interleaved* (one round runs each
    sink once) and reduced with ``max`` per sink: host jitter — CPU
    frequency ramps, cache state — then hits every configuration alike
    instead of biasing whichever happened to run during a slow window,
    and the best-of reduction approximates the noise-free runtime.
    """
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = str(Path(tmp) / "bench.jsonl")
        samples: dict[str, list[float]] = {"off": [], "jsonl": [], "provenance": []}
        for _ in range(REPS):
            samples["off"].append(run_off())
            samples["jsonl"].append(run_jsonl(trace_path))
            samples["provenance"].append(run_provenance())
        rates = {sink: max(values) for sink, values in samples.items()}
    off = rates["off"]
    runs = [
        {
            "sink": sink,
            "steps_per_s": round(rate, 1),
            "overhead_frac": round(1.0 - rate / off, 4),
        }
        for sink, rate in rates.items()
    ]
    jsonl_overhead = next(r["overhead_frac"] for r in runs if r["sink"] == "jsonl")
    return {
        "benchmark": "telemetry",
        "n": N,
        "steps": STEPS,
        "reps": REPS,
        "runs": runs,
        "jsonl_overhead_frac": jsonl_overhead,
        "jsonl_overhead_limit": JSONL_OVERHEAD_LIMIT,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="measure sink overhead and write "
        "benchmarks/results/BENCH_telemetry.json",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("nothing to do; pass --smoke (pytest runs the benchmarks)")
    payload = smoke()
    path = save_json("BENCH_telemetry", payload)
    for run in payload["runs"]:
        print(
            f"sink={run['sink']:<12} steps/s={run['steps_per_s']:>10.1f} "
            f"overhead={100 * run['overhead_frac']:6.2f}%"
        )
    print(f"wrote {path}")
    ok = payload["jsonl_overhead_frac"] <= JSONL_OVERHEAD_LIMIT
    if not ok:
        print(
            f"FAIL: JSONL sink overhead {payload['jsonl_overhead_frac']:.1%} "
            f"exceeds the {JSONL_OVERHEAD_LIMIT:.0%} budget",
            file=sys.stderr,
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
