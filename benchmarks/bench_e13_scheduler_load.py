"""E13 — scheduler sensitivity: cost and load balance across fair schedules.

The model quantifies over *all* fair schedules; the proofs are
schedule-independent, but the *costs* are not. This experiment runs the
identical corrupted FDP scenario under the four scheduler families and
reports convergence cost and the per-process message-load imbalance
(max/mean of delivered messages) — the operational answer to "how much
does the adversary hurt?" and a regression guard for the fairness
machinery (every scheduler must converge on the same scenario).
"""

from benchmarks.common import BUDGET, emit
from repro.analysis.tables import format_table
from repro.core.potential import fdp_legitimate
from repro.core.scenarios import HEAVY_CORRUPTION, build_fdp_engine, choose_leaving
from repro.graphs import generators as gen
from repro.sim.scheduler import (
    AdversarialScheduler,
    OldestFirstScheduler,
    RandomScheduler,
    SynchronousScheduler,
)

SCHEDULERS = {
    "random": lambda seed: RandomScheduler(seed),
    "oldest-first": lambda seed: OldestFirstScheduler(),
    "adversarial": lambda seed: AdversarialScheduler(patience=32, seed=seed),
    "synchronous": lambda seed: SynchronousScheduler(seed=seed),
}


def run_matrix():
    n = 16
    edges = gen.random_connected(n, 8, seed=13)
    leaving = choose_leaving(n, edges, fraction=0.4, seed=13)
    rows = []
    for name, factory in SCHEDULERS.items():
        per_seed = []
        for seed in range(5):
            engine = build_fdp_engine(
                n,
                edges,
                leaving,
                seed=seed,
                scheduler=factory(seed),
                corruption=HEAVY_CORRUPTION,
            )
            converged = engine.run(BUDGET, until=fdp_legitimate, check_every=64)
            per_seed.append(
                (
                    converged,
                    engine.step_count,
                    engine.stats.messages_posted,
                    engine.stats.load_imbalance(),
                )
            )
        assert all(c for c, _, _, _ in per_seed), name
        steps = sorted(s for _, s, _, _ in per_seed)[2]  # median of 5
        msgs = sorted(m for _, _, m, _ in per_seed)[2]
        imb = sorted(i for _, _, _, i in per_seed)[2]
        rows.append([name, steps, msgs, round(imb, 2)])
    return rows


def test_e13_scheduler_load(benchmark):
    rows = benchmark.pedantic(run_matrix, iterations=1, rounds=1)
    emit(
        "e13_scheduler_load",
        format_table(
            ["scheduler", "median steps", "median messages", "load imbalance"],
            rows,
            title="E13 — identical scenario under every fair scheduler family "
            "(n=16, heavy corruption, medians of 5 seeds)",
        ),
    )
    # Shape claims: every fair scheduler converges (asserted inside), and
    # no scheduler family produces a pathological load concentration.
    for name, steps, msgs, imbalance in rows:
        assert imbalance < 6.0, (name, imbalance)
