"""Unreliable-underlay transport benchmarks: amplification + inflation.

The reliable-delivery transport (docs/ROBUSTNESS.md, "Unreliable
network") buys back the paper's channel-set semantics under loss,
duplication, delay and transient partitions. This benchmark measures
what the buy-back costs and gates the end-to-end claims:

* **retransmit amplification** — data frames sent per paper message
  (``1 + retransmits/sends``); the acceptance bound at 10% loss is 3x;
* **convergence inflation** — FDP/FSP steps-to-legitimacy under faults
  relative to the same scenario on a loss-free underlay;
* **safety under faults** — every run is supervised by the Lemma 2
  connectivity monitor and (closed-system) the Lemma 3 Φ monitor, and
  a traffic cell at 10% loss must finish with zero
  monotonic-searchability violations. Violations are absolute gate
  failures in ``check_regression.py``; the two ratios are gated at the
  usual tolerance.

Run as a module for the CI smoke check::

    PYTHONPATH=src:. python benchmarks/bench_netfault.py --smoke

which writes ``benchmarks/results/BENCH_netfault.json``.
"""

import argparse
import sys

from benchmarks.common import save_json
from repro.core.potential import fdp_legitimate, fsp_legitimate
from repro.core.scenarios import build_fdp_engine, build_fsp_engine, choose_leaving
from repro.graphs import generators as gen
from repro.net import ReliableTransport, default_net_config
from repro.sim.monitors import ConnectivityMonitor, PotentialMonitor

#: acceptance bound: data frames per message at the 10%-loss point.
MAX_AMPLIFICATION_AT_10 = 3.0

#: fault grid; 0.0 is the inflation baseline (still one transient
#: partition — the transport must ride it out even without loss).
LOSS_GRID = (0.0, 0.1, 0.3)

SEEDS = range(5)
N = 24


def faulty_run(scenario: str, loss: float, seed: int, n: int = N) -> dict:
    """One supervised run to legitimacy over a faulty underlay."""
    edges = gen.random_connected(n, max(3, n // 6), seed=seed)
    leaving = choose_leaving(n, edges, fraction=0.25, seed=seed)
    monitors = (
        ConnectivityMonitor(check_every=16),
        PotentialMonitor(check_every=16),
    )
    build = build_fdp_engine if scenario == "fdp" else build_fsp_engine
    pred = fdp_legitimate if scenario == "fdp" else fsp_legitimate
    engine = build(n, edges, leaving, seed=seed, monitors=monitors)
    cfg = default_net_config(seed, loss=loss, dup=loss, delay=loss)
    transport = ReliableTransport.from_config(cfg).install(engine)
    converged = engine.run(2_000_000, until=pred, check_every=64)
    stats = transport.stats
    return {
        "scenario": scenario,
        "loss": loss,
        "seed": seed,
        "converged": converged,
        "steps": engine.step_count,
        "sends": stats.sends,
        "retransmits": stats.retransmits,
        "amplification": round(
            (stats.sends + stats.retransmits) / max(1, stats.sends), 4
        ),
    }


def traffic_run(loss: float, seed: int = 11, n: int = 64) -> dict:
    """Open-system churn + requests over a lossy underlay; the verdict
    is the monotonic-searchability counter, which must stay zero."""
    from repro.traffic import ArrivalConfig, RequestConfig, TrafficDriver

    edges = gen.random_connected(n, max(4, n // 8), seed=seed)
    leaving = choose_leaving(n, edges, fraction=0.1, seed=seed)
    engine = build_fdp_engine(n, edges, leaving, seed=seed)
    cfg = default_net_config(seed, loss=loss, dup=loss, delay=loss)
    ReliableTransport.from_config(cfg).install(engine)
    driver = TrafficDriver(
        engine,
        arrivals=ArrivalConfig(join_rate=8.0, session_min=512.0),
        requests=RequestConfig(rate=20.0),
        seed=seed,
        chunk=128,
    )
    report = driver.run(12_000)
    stats = report["stats"]
    return {
        "loss": loss,
        "requests": stats["requests_issued"],
        "violations": stats["searchability_violations"],
        "retransmits": engine.net_stats.retransmits,
    }


def grid(seeds=SEEDS, n: int = N) -> list[dict]:
    """Mean amplification/steps per (scenario, loss) cell over *seeds*."""
    cells = []
    for scenario in ("fdp", "fsp"):
        base_steps: float | None = None
        for loss in LOSS_GRID:
            runs = [faulty_run(scenario, loss, seed, n) for seed in seeds]
            steps = sum(r["steps"] for r in runs) / len(runs)
            if loss == 0.0:
                base_steps = steps
            cells.append(
                {
                    "scenario": scenario,
                    "loss": loss,
                    "converged": all(r["converged"] for r in runs),
                    "mean_steps": round(steps, 1),
                    "mean_amplification": round(
                        sum(r["amplification"] for r in runs) / len(runs), 4
                    ),
                    "inflation": round(steps / max(1.0, base_steps), 4),
                }
            )
    return cells


def test_netfault_convergence(benchmark):
    """Small-point benchmark so pytest-benchmark tracks the transport."""
    run = benchmark.pedantic(
        lambda: faulty_run("fdp", 0.1, seed=0), rounds=3, iterations=1
    )
    assert run["converged"]
    assert run["amplification"] <= MAX_AMPLIFICATION_AT_10


# ------------------------------------------------------------- CI smoke entry


def smoke() -> dict:
    """The gated payload: fault grid + one traffic cell at 10% loss."""
    cells = grid()
    at_10 = [c for c in cells if c["loss"] == 0.1]
    traffic = traffic_run(0.1)
    return {
        "benchmark": "netfault",
        "n": N,
        "seeds": len(list(SEEDS)),
        "grid": cells,
        "amplification_at_10": round(
            max(c["mean_amplification"] for c in at_10), 4
        ),
        "inflation_at_10": round(max(c["inflation"] for c in at_10), 4),
        "traffic": traffic,
        "all_converged": all(c["converged"] for c in cells),
        "max_amplification_limit": MAX_AMPLIFICATION_AT_10,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fault grid and write benchmarks/results/BENCH_netfault.json",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("nothing to do; pass --smoke (pytest runs the benchmarks)")
    payload = smoke()
    path = save_json("BENCH_netfault", payload)
    ok = True
    for cell in payload["grid"]:
        print(
            f"{cell['scenario']} loss={cell['loss']:<4} "
            f"steps={cell['mean_steps']:>8.1f} "
            f"amp={cell['mean_amplification']:<7} "
            f"inflation={cell['inflation']:<7} converged={cell['converged']}"
        )
    traffic = payload["traffic"]
    print(
        f"traffic loss={traffic['loss']} requests={traffic['requests']} "
        f"violations={traffic['violations']}"
    )
    if not payload["all_converged"]:
        print("FAIL: a faulty cell did not converge", file=sys.stderr)
        ok = False
    if payload["amplification_at_10"] > MAX_AMPLIFICATION_AT_10:
        print(
            f"FAIL: amplification {payload['amplification_at_10']} at 10% "
            f"loss exceeds the {MAX_AMPLIFICATION_AT_10}x acceptance bound",
            file=sys.stderr,
        )
        ok = False
    if traffic["violations"]:
        print(
            f"FAIL: {traffic['violations']} monotonic-searchability "
            "violations under loss",
            file=sys.stderr,
        )
        ok = False
    print(f"wrote {path}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
