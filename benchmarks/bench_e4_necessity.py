"""E4 — Theorem 2: each primitive is necessary for universality.

Claims reproduced: for each primitive, the paper's witness instance
(G, G′) is reachable with the full calculus but unreachable without that
primitive — demonstrated by bounded exhaustive search over the restricted
calculus and by the invariant each restricted walk preserves.
"""

from benchmarks.common import emit
from repro.analysis.tables import format_table
from repro.core.primitives import Primitive, PrimitiveGraph
from repro.core.universality import (
    NECESSITY_WITNESSES,
    plan_transformation,
    restricted_reachable,
)


def explore_all():
    results = {}
    for name, w in NECESSITY_WITNESSES.items():
        allowed = frozenset(Primitive) - {w.dropped}
        if w.dropped is Primitive.INTRODUCTION:
            allowed -= {Primitive.SELF_INTRODUCTION}
        reachable = restricted_reachable(
            w.nodes, w.initial, allowed, max_multiplicity=2, max_states=500_000
        )
        results[name] = reachable
    return results


def test_e4_necessity(benchmark):
    results = benchmark.pedantic(explore_all, iterations=1, rounds=1)

    rows = []
    for name, w in sorted(NECESSITY_WITNESSES.items()):
        target_key = PrimitiveGraph(w.nodes, w.target).state_key()
        reachable = results[name]
        unreachable_without = target_key not in reachable
        # ... and reachable WITH the full calculus:
        plan = plan_transformation(w.nodes, w.initial, w.target)
        with_full = plan.replay().simple_edges() == frozenset(w.target)
        assert unreachable_without, f"{name}: witness reachable without primitive!"
        assert with_full
        rows.append(
            [
                name,
                f"{len(w.nodes)} nodes",
                len(reachable),
                unreachable_without,
                with_full,
                w.invariant_kind,
            ]
        )
    emit(
        "e4_necessity",
        format_table(
            [
                "dropped primitive",
                "witness",
                "states explored",
                "target unreachable w/o",
                "target reachable with",
                "blocking invariant",
            ],
            rows,
            title="E4 — Theorem 2 necessity witnesses (bounded exhaustive search)",
        ),
    )
