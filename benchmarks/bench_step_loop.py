"""Step-loop and trial-fabric throughput benchmarks.

Guardrails for the two hot paths this library optimizes:

* the **engine step loop** — steps/sec of a heavily corrupted FDP run,
  monitored (per-step Lemma 2/3 monitors) and unmonitored, n ∈ {64, 256};
* the **trial fabric** — wall-clock of an E6-style convergence sweep,
  serial vs parallel workers, plus the serial ≡ parallel identity check.

Run as a module for the CI smoke check::

    PYTHONPATH=src:. python benchmarks/bench_step_loop.py --smoke

which writes ``benchmarks/results/BENCH_step_loop.json``. The payload
embeds the pre-optimization baseline (measured on the same host at the
commit before the dirty-ref/allocation work, fingerprint diffing on the
hot path and a cold pool per series) so the speedup is a diffable
artifact. ``--strict`` additionally fails the run unless the ≥2x
unmonitored n=256 target holds — meaningful only on the measurement
host; CI machines differ, so CI runs without it and only smoke-checks
that the harness works and serial ≡ parallel holds.
"""

import argparse
import functools
import os
import sys
import time

from benchmarks.common import save_json
from repro.analysis.runner import run_series
from repro.analysis.sweep import sweep
from repro.core.potential import fdp_legitimate
from repro.core.scenarios import HEAVY_CORRUPTION, build_fdp_engine, choose_leaving
from repro.graphs import generators as gen
from repro.sim.monitors import ConnectivityMonitor, PotentialMonitor

#: Pre-optimization reference, measured at the parent commit of the
#: step-loop work on the authoring host (higher of two runs — the
#: conservative choice for speedup claims). Same scenarios as below.
BASELINE_PR1 = {
    "steps_per_s": {
        "n64_unmonitored": 21377.0,
        "n64_monitored": 11711.0,
        "n256_unmonitored": 18540.0,
        "n256_monitored": 6869.0,
    },
    "sweep_serial_wall_s": 1.15,
}

SWEEP_AXES = {"n": [24, 32]}
SWEEP_SEEDS = 6
SWEEP_BUDGET = 60_000

#: timed step budget per SoA scale point (full methodology; ``--smoke``
#: divides by 4). Long ranges matter: the workload drifts as pending
#: messages accumulate, so short windows flatter whichever mode runs
#: first. Both modes always time the SAME step range.
SOA_STEPS = {256: 200_000, 4096: 440_000, 16384: 120_000}
#: steps executed before the timer starts: excludes attach() (graph +
#: LiveGraph construction) and first-touch warmup from the rate.
SOA_WARMUP = 256
#: the tentpole's acceptance floor at n=4096 (unmonitored steps/s ratio).
SOA_TARGET_RATIO = 5.0


def _build(n: int, seed: int, engine_mode: str | None = None):
    edges = gen.random_connected(n, n // 2, seed=seed)
    leaving = choose_leaving(n, edges, fraction=0.3, seed=seed)
    return build_fdp_engine(
        n,
        edges,
        leaving,
        seed=seed,
        corruption=HEAVY_CORRUPTION,
        engine_mode=engine_mode,
    )


def step_rate(n: int, monitored: bool, steps: int = 6_000) -> float:
    """Steps/sec of one long run (no convergence predicate — pure loop)."""
    engine = _build(n, seed=7)
    engine.attach()
    if monitored:
        engine.monitors.append(ConnectivityMonitor(check_every=1))
        engine.monitors.append(PotentialMonitor(check_every=1))
    start = time.perf_counter()
    engine.run(steps, check_every=256)
    wall = time.perf_counter() - start
    return engine.step_count / wall if wall > 0 else 0.0


def make_builder(n: int):
    return functools.partial(_build, n)


def sweep_wall(parallel: bool, max_workers: int | None = None) -> float:
    start = time.perf_counter()
    points = sweep(
        SWEEP_AXES,
        make_builder,
        until=fdp_legitimate,
        max_steps=SWEEP_BUDGET,
        seeds_per_point=SWEEP_SEEDS,
        parallel=parallel,
        max_workers=max_workers,
    )
    wall = time.perf_counter() - start
    assert all(p.result.convergence_rate == 1.0 for p in points)
    return wall


# --------------------------------------------------------- SoA core benchmark


def core_rate(n: int, engine_mode: str, steps: int, seed: int = 7) -> float:
    """Unmonitored steps/sec of one warmed-up run on the chosen core.

    The warmup run performs attach() (graph + LiveGraph build) and the
    first :data:`SOA_WARMUP` steps outside the timed window; the timed
    window then covers an identical step range for every mode, so the
    ratio compares like against like even though the workload drifts as
    the pending-message population grows.
    """
    engine = _build(n, seed=seed, engine_mode=engine_mode)
    engine.run(SOA_WARMUP, check_every=SOA_WARMUP)
    start = time.perf_counter()
    engine.run(steps, check_every=steps)
    wall = time.perf_counter() - start
    timed = engine.step_count - SOA_WARMUP
    return timed / wall if wall > 0 else 0.0


def soa_smoke(scale_points: list[int], *, smoke: bool = False, pairs: int = 2) -> dict:
    """Objects-vs-SoA throughput at the requested scale points.

    Runs interleaved (objects, soa) pairs per point — interleaving
    averages out thermal/host drift that would bias a
    all-objects-then-all-soa order — and reports the median per-pair
    ratio. ``smoke`` quarters the step budget and runs one pair (the CI
    configuration; the committed baseline stores both).
    """
    runs = []
    ratios: dict[int, list[float]] = {}
    npairs = 1 if smoke else pairs
    for n in scale_points:
        steps = SOA_STEPS[n] // (4 if smoke else 1)
        ratios[n] = []
        for pair in range(npairs):
            rates = {}
            for engine_mode in ("objects", "soa"):
                rate = core_rate(n, engine_mode, steps)
                rates[engine_mode] = rate
                runs.append(
                    {
                        "n": n,
                        "mode": engine_mode,
                        "pair": pair,
                        "timed_steps": steps,
                        "steps_per_s": round(rate, 1),
                    }
                )
            ratios[n].append(rates["soa"] / rates["objects"])
    medians = {
        n: sorted(rs)[len(rs) // 2] for n, rs in ratios.items() if rs
    }
    return {
        "benchmark": "soa_core",
        "smoke": smoke,
        "warmup_steps": SOA_WARMUP,
        "pairs_per_point": npairs,
        "cpu_count": os.cpu_count(),
        "runs": runs,
        "ratio_soa_vs_objects": {
            str(n): round(r, 2) for n, r in medians.items()
        },
        "target_ratio_n4096": SOA_TARGET_RATIO,
    }


# ----------------------------------------------------------- pytest benchmarks


def test_step_loop_unmonitored_n64(benchmark):
    rate = benchmark.pedantic(
        lambda: step_rate(64, monitored=False, steps=3_000), rounds=3, iterations=1
    )
    assert rate > 0


def test_step_loop_monitored_n64(benchmark):
    rate = benchmark.pedantic(
        lambda: step_rate(64, monitored=True, steps=3_000), rounds=3, iterations=1
    )
    assert rate > 0


def test_serial_parallel_identity():
    """The fabric's determinism contract, exercised at benchmark scale."""
    kw = dict(until=fdp_legitimate, max_steps=SWEEP_BUDGET, check_every=64)
    serial = run_series(make_builder(24), range(4), parallel=False, **kw)
    fanned = run_series(make_builder(24), range(4), parallel=True, max_workers=2, **kw)
    assert serial.trials == fanned.trials


# ------------------------------------------------------------- CI smoke entry


def smoke(steps: int = 6_000) -> dict:
    rates = {}
    for n in (64, 256):
        for monitored in (False, True):
            key = f"n{n}_{'monitored' if monitored else 'unmonitored'}"
            rates[key] = round(step_rate(n, monitored, steps), 1)
    serial_wall = sweep_wall(parallel=False)
    workers = min(4, os.cpu_count() or 1)
    parallel_wall = sweep_wall(parallel=True, max_workers=workers)
    payload = {
        "benchmark": "step_loop",
        "steps_budget": steps,
        "cpu_count": os.cpu_count(),
        "steps_per_s": rates,
        "sweep": {
            "axes": SWEEP_AXES,
            "seeds_per_point": SWEEP_SEEDS,
            "serial_wall_s": round(serial_wall, 3),
            "parallel_wall_s": round(parallel_wall, 3),
            "parallel_workers": workers,
            "parallel_speedup": round(serial_wall / parallel_wall, 2)
            if parallel_wall > 0
            else None,
        },
        "baseline_pr1": BASELINE_PR1,
        "speedup_vs_baseline": {
            key: round(rates[key] / ref, 2)
            for key, ref in BASELINE_PR1["steps_per_s"].items()
        },
    }
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="measure step-loop + fabric throughput and write "
        "benchmarks/results/BENCH_step_loop.json",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail unless unmonitored n=256 is >= 2x the embedded baseline "
        "(only meaningful on the baseline's measurement host); with --n "
        "4096, fail unless the SoA core clears its >= 5x ratio floor",
    )
    parser.add_argument(
        "--n",
        action="append",
        type=int,
        dest="scale_points",
        metavar="N",
        help="benchmark the SoA core vs the object model at this scale "
        f"point (repeatable; choices: {sorted(SOA_STEPS)}) and write "
        "benchmarks/results/BENCH_soa.json instead of the step-loop smoke",
    )
    args = parser.parse_args(argv)
    if args.scale_points:
        for n in args.scale_points:
            if n not in SOA_STEPS:
                parser.error(f"--n must be one of {sorted(SOA_STEPS)}, got {n}")
        payload = soa_smoke(args.scale_points, smoke=args.smoke)
        path = save_json("BENCH_soa", payload)
        for run in payload["runs"]:
            print(
                f"n={run['n']:>6} mode={run['mode']:<8} pair={run['pair']} "
                f"steps/s={run['steps_per_s']:>10.1f}"
            )
        for n_str, ratio in payload["ratio_soa_vs_objects"].items():
            print(f"n={n_str:>6} soa/objects ratio = {ratio:.2f}x")
        print(f"wrote {path}")
        if args.strict:
            ratio = payload["ratio_soa_vs_objects"].get("4096")
            if ratio is not None and ratio < SOA_TARGET_RATIO:
                print(
                    f"FAIL: expected >= {SOA_TARGET_RATIO}x soa/objects "
                    f"at n=4096, measured {ratio:.2f}x",
                    file=sys.stderr,
                )
                return 1
        return 0
    if not args.smoke:
        parser.error("nothing to do; pass --smoke (pytest runs the benchmarks)")
    payload = smoke()
    path = save_json("BENCH_step_loop", payload)
    for key, rate in payload["steps_per_s"].items():
        speedup = payload["speedup_vs_baseline"][key]
        print(f"{key:<20} steps/s={rate:>10.1f}  ({speedup:.2f}x baseline)")
    sw = payload["sweep"]
    print(
        f"sweep serial={sw['serial_wall_s']:.2f}s "
        f"parallel[{sw['parallel_workers']}w]={sw['parallel_wall_s']:.2f}s "
        f"speedup={sw['parallel_speedup']}x (host cpus: {payload['cpu_count']})"
    )
    print(f"wrote {path}")
    if args.strict and payload["speedup_vs_baseline"]["n256_unmonitored"] < 2.0:
        print("FAIL: expected >= 2x unmonitored steps/s at n=256", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
