"""E5 — Lemma 2: the FDP protocol never disconnects relevant processes.

Claim reproduced: across topologies, schedulers and heavy initial
corruption, the per-step connectivity monitor (the executable Lemma 2)
never trips. The bench cost quantifies the price of per-step verification
— the overhead a user pays to run the protocol under a safety watchdog.
"""

from benchmarks.common import BUDGET, emit
from repro.analysis.tables import format_table
from repro.core.potential import fdp_legitimate
from repro.core.scenarios import HEAVY_CORRUPTION, build_fdp_engine, choose_leaving
from repro.graphs import generators as gen
from repro.sim.monitors import ConnectivityMonitor
from repro.sim.scheduler import AdversarialScheduler, RandomScheduler


def run_case(topology: str, adversarial: bool, seed: int):
    n = 14
    edges = gen.GENERATORS[topology](n)
    leaving = choose_leaving(n, edges, fraction=0.4, seed=seed)
    monitor = ConnectivityMonitor(check_every=1)  # every single step
    scheduler = (
        AdversarialScheduler(patience=32, seed=seed)
        if adversarial
        else RandomScheduler(seed)
    )
    engine = build_fdp_engine(
        n,
        edges,
        leaving,
        seed=seed,
        scheduler=scheduler,
        corruption=HEAVY_CORRUPTION,
        monitors=[monitor],
    )
    converged = engine.run(BUDGET, until=fdp_legitimate, check_every=64)
    return converged, engine.step_count, monitor.checks


def test_e5_safety(benchmark):
    rows = []
    for topology in (
        "ring",
        "two_cliques_bridge",
        "lollipop",
        "binary_tree",
        "star",
        "bidirected_line",
    ):
        for adversarial in (False, True):
            converged, steps, checks = run_case(topology, adversarial, seed=3)
            assert converged  # liveness — and no SafetyViolation was raised
            rows.append(
                [
                    topology,
                    "adversarial" if adversarial else "random",
                    steps,
                    checks,
                    True,
                ]
            )
    emit(
        "e5_safety",
        format_table(
            ["topology", "scheduler", "steps", "per-step checks", "Lemma 2 held"],
            rows,
            title="E5 — Lemma 2 under heavy corruption, connectivity checked every step",
        ),
    )
    benchmark.pedantic(
        run_case, args=("lollipop", True, 3), iterations=1, rounds=2
    )
