"""E7 — Theorem 3: the FDP protocol + SINGLE is a self-stabilizing solution.

Claims reproduced: from a battery of random admissible initial states —
random topologies, random leaving sets, heavy corruption, adversarial and
random schedules — every run (convergence rate 1.0) reaches a legitimate
state, and legitimacy persists afterwards (closure probes).
"""

from benchmarks.common import BUDGET, emit
from repro.analysis.tables import format_table
from repro.core.potential import fdp_legitimate
from repro.core.scenarios import HEAVY_CORRUPTION, build_fdp_engine, choose_leaving
from repro.graphs import generators as gen
from repro.sim.scheduler import AdversarialScheduler, RandomScheduler


def run_battery(trials: int = 20):
    results = []
    for seed in range(trials):
        n = 10 + (seed % 5) * 6
        edges = gen.random_connected(n, n // 2, seed=seed * 17 + 1)
        leaving = choose_leaving(n, edges, fraction=0.25 + 0.05 * (seed % 5), seed=seed)
        scheduler = (
            AdversarialScheduler(patience=32, seed=seed)
            if seed % 2
            else RandomScheduler(seed)
        )
        engine = build_fdp_engine(
            n,
            edges,
            leaving,
            seed=seed,
            scheduler=scheduler,
            corruption=HEAVY_CORRUPTION,
        )
        converged = engine.run(BUDGET, until=fdp_legitimate, check_every=64)
        closure_ok = converged
        if converged:
            for _ in range(200):
                if engine.step() is None:
                    break
                if not fdp_legitimate(engine):
                    closure_ok = False
                    break
        results.append(
            (seed, n, len(leaving), converged, closure_ok, engine.step_count)
        )
    return results


def test_e7_fdp_end_to_end(benchmark):
    results = benchmark.pedantic(run_battery, iterations=1, rounds=1)
    rows = [
        [seed, n, k, conv, clos, steps]
        for seed, n, k, conv, clos, steps in results
    ]
    emit(
        "e7_end_to_end",
        format_table(
            ["seed", "n", "leaving", "converged", "closure held", "steps"],
            rows,
            title="E7 — Theorem 3 battery: arbitrary initial states, rate must be 1.0",
        ),
    )
    assert all(conv for _, _, _, conv, _, _ in results)
    assert all(clos for _, _, _, _, clos, _ in results)
