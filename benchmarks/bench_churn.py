"""Open-system churn + request-traffic throughput benchmarks.

Guardrail for the service workload (docs/TRAFFIC.md): sustained
join/leave churn with streaming search requests over a running FDP
system, on the struct-of-arrays core at n = 4096. The smoke run doubles
as the open-system acceptance gate — it must clear >= 10k requests with
ZERO monotonic-searchability violations, fault-free.

Run as a module for the CI smoke check::

    PYTHONPATH=src:. python benchmarks/bench_churn.py --smoke

which writes ``benchmarks/results/BENCH_churn.json`` with executed
engine steps/sec plus the churn/request tallies, and exits non-zero on
any searchability violation. ``check_regression.py`` gates the
committed steps/sec at its usual tolerance.
"""

import argparse
import sys
import time

from benchmarks.common import save_json
from repro.core.scenarios import build_fdp_engine, choose_leaving
from repro.graphs import generators as gen
from repro.traffic import ArrivalConfig, RequestConfig, TrafficDriver

#: virtual-step budget of the smoke point (and the pytest benchmark).
SMOKE_STEPS = 60_000

#: arrival/request mix tuned for a roughly stable n=4096 population:
#: mean Pareto session = session_min * shape/(shape-1) ≈ 24.6k steps, so
#: the leave flux is ~population/24.6k per step ≈ 167 per 1000 steps —
#: matched by the join rate, capped a little above the seed size.
ARRIVALS = dict(
    join_rate=160.0,
    session_min=8_192.0,
    flash_crowd_prob=0.02,
    flash_crowd_size=32,
    mass_departure_prob=0.01,
    mass_departure_frac=0.02,
    max_population=4_608,
)
REQUEST_RATE = 200.0


def open_system_run(
    n: int, mode: str, virtual_steps: int, seed: int = 11
) -> dict:
    """One timed open-system run; returns the JSON-ready run record."""
    edges = gen.random_connected(n, max(32, n // 128), seed=seed)
    leaving = choose_leaving(n, edges, fraction=0.05, seed=seed)
    engine = build_fdp_engine(
        n, edges, leaving, seed=seed, engine_mode=mode
    )
    # chunk amortizes the per-boundary live-graph rebuild (export_to
    # disarms the observers, so every boundary's first graph read is a
    # full O(V+E) rebuild at this scale); sparse latency sampling keeps
    # the per-sample BFS out of the measured steady state.
    driver = TrafficDriver(
        engine,
        arrivals=ArrivalConfig(**ARRIVALS),
        requests=RequestConfig(rate=REQUEST_RATE, latency_sample_every=64),
        seed=seed,
        chunk=2_048,
    )
    start = time.perf_counter()
    report = driver.run(virtual_steps)
    elapsed = time.perf_counter() - start
    stats = report["stats"]
    executed = report["executed_steps"]
    return {
        "n": n,
        "mode": mode,
        "virtual_steps": virtual_steps,
        "executed_steps": executed,
        "steps_per_s": round(executed / elapsed, 1),
        "joins": stats["joins"],
        "leaves": stats["leaves"],
        "reaps": stats["reaps"],
        "requests": stats["requests_issued"],
        "drop_rate": round(stats["drop_rate"], 6),
        "violations": stats["searchability_violations"],
        "bounced": engine.stats.bounced,
        "dropped_gone": engine.stats.dropped_gone,
    }


def test_churn_throughput_n256(benchmark):
    """Small-point benchmark so pytest-benchmark tracks the workload."""
    run = benchmark.pedantic(
        lambda: open_system_run(256, "soa", 20_000), rounds=3, iterations=1
    )
    assert run["requests"] > 0
    assert run["violations"] == 0


# ------------------------------------------------------------- CI smoke entry


def smoke(virtual_steps: int = SMOKE_STEPS) -> dict:
    """The n=4096 soa churn point; returns the JSON payload."""
    runs = [open_system_run(4096, "soa", virtual_steps)]
    return {
        "benchmark": "churn",
        "virtual_steps": virtual_steps,
        "runs": runs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the n=4096 soa churn point and write "
        "benchmarks/results/BENCH_churn.json",
    )
    parser.add_argument(
        "--steps",
        type=int,
        default=SMOKE_STEPS,
        help="virtual-step budget for the smoke point",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("nothing to do; pass --smoke (pytest runs the benchmarks)")
    payload = smoke(args.steps)
    path = save_json("BENCH_churn", payload)
    ok = True
    for run in payload["runs"]:
        print(
            f"n={run['n']:>5} mode={run['mode']:<7} "
            f"steps/s={run['steps_per_s']:>10.1f} "
            f"joins={run['joins']} leaves={run['leaves']} "
            f"reaps={run['reaps']} requests={run['requests']} "
            f"violations={run['violations']}"
        )
        if run["requests"] < 10_000:
            print(
                f"FAIL: {run['requests']} requests < the 10k acceptance "
                "floor",
                file=sys.stderr,
            )
            ok = False
        if run["violations"]:
            print(
                f"FAIL: {run['violations']} monotonic-searchability "
                "violations in a fault-free run",
                file=sys.stderr,
            )
            ok = False
    print(f"wrote {path}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
