"""E12 — beyond connectivity: how much stronger a safety condition holds?

The paper's conclusion names the open question: *stronger safety
conditions for overlay networks than just connectivity*. This experiment
quantifies two candidates over FDP runs — the worst-case **distance
stretch** of the staying overlay relative to the initial state, and the
worst-case **degree blow-up** from inherited references.

Findings this experiment reproduces deterministically:

* **Stretch never exceeds 1.0 — a strictly stronger safety property
  empirically holds.** The departure protocol's staying-side moves only
  *add* staying↔staying edges (integration, reversal hand-overs); the
  only deletions a staying process ever performs target references to
  *leaving* processes. Distances between staying processes therefore
  never grow — the overlay monotonically improves for the stayers. This
  is a concrete candidate answer to the paper's future-work question: the
  Section 3 protocol appears to already satisfy "non-increasing staying
  distance", a condition strictly stronger than Lemma 2.
* **Degree blow-up is the real cost.** Leavers hand their references to
  anchors; processes adjacent to many leavers (the lollipop's clique
  head) inherit multiples of their initial degree. Bounding the blow-up
  would require balancing hand-overs — genuinely future work.
"""

from benchmarks.common import BUDGET, emit
from repro.analysis.tables import format_table
from repro.core.potential import fdp_legitimate
from repro.core.safety_plus import (
    StretchMonitor,
    degree_blowup,
    staying_out_degrees,
)
from repro.core.scenarios import LIGHT_CORRUPTION, build_fdp_engine, choose_leaving
from repro.graphs import generators as gen


def run_case(topology: str, seed: int = 6):
    n = 14
    edges = gen.GENERATORS[topology](n)
    leaving = choose_leaving(n, edges, fraction=0.35, seed=seed)
    # record-only (bound = inf): we are *measuring* the candidate
    # condition, not assuming it
    monitor = StretchMonitor(check_every=8)
    engine = build_fdp_engine(
        n,
        edges,
        leaving,
        seed=seed,
        corruption=LIGHT_CORRUPTION,
        monitors=[monitor],
    )
    base_deg = staying_out_degrees(engine)
    converged = engine.run(BUDGET, until=fdp_legitimate, check_every=64)
    final_stretch = monitor.series[-1] if monitor.series else 1.0
    return (
        converged,
        monitor.peak,
        final_stretch,
        degree_blowup(engine, base_deg),
    )


def run_all():
    rows = []
    for topology in (
        "ring",
        "bidirected_line",
        "two_cliques_bridge",
        "lollipop",
        "star",
    ):
        converged, peak, final, blowup = run_case(topology)
        rows.append([topology, converged, peak, final, blowup])
    return rows


def test_e12_beyond_connectivity(benchmark):
    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    emit(
        "e12_beyond_connectivity",
        format_table(
            [
                "topology",
                "converged",
                "peak stretch",
                "final stretch",
                "degree blow-up",
            ],
            rows,
            title="E12 — stronger-safety candidates over FDP runs (n=14, 35% leaving)",
        ),
    )
    for topology, converged, peak, final, blowup in rows:
        assert converged, topology
        # The headline finding: staying distances never grew, on any
        # topology, at any sampled step.
        assert peak == 1.0, (topology, peak)
        assert final == 1.0, (topology, final)
        # Degree blow-up is bounded but real (lollipop: clique head
        # inherits the whole tail's hand-overs).
        assert blowup <= 10.0, (topology, blowup)
    blowups = {t: b for t, _, _, _, b in rows}
    # the topology-dependence finding: dense-adjacent-to-leavers beats
    # bridges
    assert blowups["lollipop"] >= blowups["two_cliques_bridge"]
