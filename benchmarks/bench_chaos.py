"""Chaos-supervision overhead benchmarks (library performance).

The watchdog catalog promises to be cheap enough to leave on for every
run: each per-step check is a modulo test, and each sampled check reads
only the engine's O(1) counters (Φ, pending, edge, lifecycle). This
suite enforces that promise:

* the full default watchdog set (livelock + no-progress + backlog) must
  keep a fault-injected FDP run within 15% of the unsupervised
  steps/sec at n = 256 — the acceptance bound;
* a run with an active :class:`~repro.chaos.campaigns.ChaosCampaign` is
  measured alongside for visibility. Its figure is not gated: an
  injection deliberately *adds work* (new messages to deliver, a
  component scan, supervisor rebasing), so its cost is a feature budget,
  not overhead.

Run as a module for the CI smoke check::

    PYTHONPATH=src:. python benchmarks/bench_chaos.py --smoke

which writes ``benchmarks/results/BENCH_chaos.json`` and asserts the
watchdog overhead bound. Configurations are timed interleaved,
best-of-``REPS``, exactly like ``bench_telemetry.py`` — host jitter hits
every configuration alike and the best-of reduction approximates the
noise-free runtime.
"""

import argparse
import sys
import time

from benchmarks.common import save_json
from repro.chaos import ChaosCampaign, default_watchdogs
from repro.core.scenarios import HEAVY_CORRUPTION, build_fdp_engine, choose_leaving
from repro.graphs import generators as gen

N = 256
STEPS = 20_000
REPS = 5
WATCHDOG_OVERHEAD_LIMIT = 0.15
CAMPAIGN_PERIOD = 2_000


def _never(engine):
    return False


def _build(monitors=()):
    edges = gen.random_connected(N, 16, seed=9)
    leaving = choose_leaving(N, edges, fraction=0.3, seed=9)
    return build_fdp_engine(
        N,
        edges,
        leaving,
        seed=9,
        corruption=HEAVY_CORRUPTION,
        monitors=list(monitors),
    )


def _run_fixed(monitors=()) -> float:
    """One fault-injected run of STEPS steps; returns steps/sec."""
    engine = _build(monitors)
    engine.attach()
    start = time.perf_counter()
    engine.run(STEPS, until=_never)
    wall = time.perf_counter() - start
    assert engine.step_count == STEPS
    return STEPS / wall


def run_plain() -> float:
    return _run_fixed()


def run_watchdogs() -> float:
    return _run_fixed(default_watchdogs())


def run_campaign() -> float:
    campaign = ChaosCampaign(seed=9, period=CAMPAIGN_PERIOD)
    return _run_fixed([campaign, *default_watchdogs()])


# --------------------------------------------------------- pytest-benchmark


def test_throughput_plain(benchmark):
    rate = benchmark.pedantic(run_plain, rounds=3, iterations=1)
    assert rate > 0


def test_throughput_watchdogs(benchmark):
    rate = benchmark.pedantic(run_watchdogs, rounds=3, iterations=1)
    assert rate > 0


def test_throughput_campaign(benchmark):
    rate = benchmark.pedantic(run_campaign, rounds=3, iterations=1)
    assert rate > 0


# ----------------------------------------------------------- CI smoke entry


def smoke() -> dict:
    """Best-of-REPS steps/sec per supervision configuration."""
    samples: dict[str, list[float]] = {"plain": [], "watchdogs": [], "campaign": []}
    for _ in range(REPS):
        samples["plain"].append(run_plain())
        samples["watchdogs"].append(run_watchdogs())
        samples["campaign"].append(run_campaign())
    rates = {config: max(values) for config, values in samples.items()}
    plain = rates["plain"]
    runs = [
        {
            "config": config,
            "steps_per_s": round(rate, 1),
            "overhead_frac": round(1.0 - rate / plain, 4),
        }
        for config, rate in rates.items()
    ]
    watchdog_overhead = next(
        r["overhead_frac"] for r in runs if r["config"] == "watchdogs"
    )
    return {
        "benchmark": "chaos",
        "n": N,
        "steps": STEPS,
        "reps": REPS,
        "campaign_period": CAMPAIGN_PERIOD,
        "runs": runs,
        "watchdog_overhead_frac": watchdog_overhead,
        "watchdog_overhead_limit": WATCHDOG_OVERHEAD_LIMIT,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="measure supervision overhead and write "
        "benchmarks/results/BENCH_chaos.json",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("nothing to do; pass --smoke (pytest runs the benchmarks)")
    payload = smoke()
    path = save_json("BENCH_chaos", payload)
    for run in payload["runs"]:
        print(
            f"config={run['config']:<10} steps/s={run['steps_per_s']:>10.1f} "
            f"overhead={100 * run['overhead_frac']:6.2f}%"
        )
    print(f"wrote {path}")
    ok = payload["watchdog_overhead_frac"] <= WATCHDOG_OVERHEAD_LIMIT
    if not ok:
        print(
            f"FAIL: watchdog overhead {payload['watchdog_overhead_frac']:.1%} "
            f"exceeds the {WATCHDOG_OVERHEAD_LIMIT:.0%} budget",
            file=sys.stderr,
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
