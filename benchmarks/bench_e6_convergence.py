"""E6 — Lemma 3 / liveness: Φ decays monotonically and all leavers exit.

Claims reproduced:

* the potential Φ never increases along a run and hits 0 (monotone decay
  series, sampled);
* convergence time grows moderately with n (log-log slope well below
  quadratic on sparse random topologies);
* convergence time grows with the leaving fraction and with the amount of
  injected invalid information — more garbage, longer runs (the paper's
  proof structure: first Φ must drain, then departures complete).
"""

from benchmarks.common import BUDGET, emit
from repro.analysis.runner import run_series
from repro.analysis.stats import is_nonincreasing, loglog_slope
from repro.analysis.tables import format_series, format_table, sparkline
from repro.core.potential import fdp_legitimate
from repro.core.scenarios import (
    Corruption,
    HEAVY_CORRUPTION,
    build_fdp_engine,
    choose_leaving,
)
from repro.graphs import generators as gen
from repro.sim.tracing import SeriesRecorder


def build_for(n, fraction=0.3, corruption=HEAVY_CORRUPTION):
    def build(seed):
        edges = gen.random_connected(n, n // 2, seed=seed ^ 0xABC)
        leaving = choose_leaving(n, edges, fraction=fraction, seed=seed)
        return build_fdp_engine(n, edges, leaving, seed=seed, corruption=corruption)

    return build


def phi_decay(n=24, seed=4):
    recorder = SeriesRecorder(
        probes={"phi": lambda e: float(e.potential())}, every=16
    )
    edges = gen.random_connected(n, n // 2, seed=seed)
    leaving = choose_leaving(n, edges, fraction=0.4, seed=seed)
    engine = build_fdp_engine(
        n, edges, leaving, seed=seed, corruption=HEAVY_CORRUPTION,
        monitors=[recorder],
    )
    assert engine.run(BUDGET, until=fdp_legitimate, check_every=64)
    return recorder.series["phi"], recorder.steps


def scaling_in_n():
    ns = [8, 16, 32, 64, 128]
    med_steps, med_msgs = [], []
    for n in ns:
        series = run_series(
            build_for(n),
            seeds=range(5),
            until=fdp_legitimate,
            max_steps=BUDGET,
            check_every=64,
            parallel=False,
        )
        assert series.convergence_rate == 1.0
        med_steps.append(series.steps_summary()["median"])
        med_msgs.append(series.messages_summary()["median"])
    return ns, med_steps, med_msgs


def test_e6_phi_monotone_decay(benchmark):
    phi, steps = benchmark.pedantic(phi_decay, iterations=1, rounds=1)
    assert is_nonincreasing(phi)
    assert phi[-1] == 0.0
    assert phi[0] > 0.0  # the heavy corruption really injected lies
    emit(
        "e6_phi_decay",
        "E6 — Φ decay along one heavily corrupted run (sampled every 16 steps)\n"
        f"Φ₀ = {phi[0]:.0f}, samples = {len(phi)}, final = {phi[-1]:.0f}\n"
        f"shape: {sparkline(phi)}",
    )


def test_e6_scaling_with_n(benchmark):
    ns, med_steps, med_msgs = benchmark.pedantic(
        scaling_in_n, iterations=1, rounds=1
    )
    emit(
        "e6_scaling_n",
        format_series(
            "n",
            ns,
            {"median steps": med_steps, "median messages": med_msgs},
            title="E6 — convergence cost vs n (0.3 leaving, heavy corruption)",
        ),
    )
    # Shape claims: cost grows with n, sub-quadratically on sparse graphs.
    assert med_steps == sorted(med_steps)
    assert loglog_slope(ns, med_steps) < 2.0


def test_e6_fraction_and_corruption_sweeps(benchmark):
    rows = benchmark.pedantic(_sweep_rows, iterations=1, rounds=1)
    emit(
        "e6_sweeps",
        format_table(
            ["axis", "value", "median steps"],
            rows,
            title="E6 — convergence vs leaving fraction and corruption level (n=20)",
        ),
    )
    # Shape: the corruption level is the dominant cost driver — exactly the
    # structure of the paper's liveness proof (first Φ must drain, then
    # departures cascade). The leaving-fraction axis is comparatively flat
    # under heavy corruption (departures are cheap once information is
    # valid) — reported, not asserted, since few-seed medians are noisy there.
    corruption_block = [r[2] for r in rows if r[0] == "corruption factor"]
    assert corruption_block == sorted(corruption_block)
    assert corruption_block[0] < corruption_block[-1]


def _sweep_rows():
    rows = []
    n = 20
    for fraction in (0.1, 0.3, 0.5, 0.7):
        series = run_series(
            build_for(n, fraction=fraction),
            seeds=range(5),
            until=fdp_legitimate,
            max_steps=BUDGET,
            check_every=64,
            parallel=False,
        )
        assert series.convergence_rate == 1.0
        rows.append(
            ["leaving fraction", fraction, series.steps_summary()["median"]]
        )
    for factor in (0.0, 0.5, 1.0):
        corruption = HEAVY_CORRUPTION.scaled(factor)
        series = run_series(
            build_for(n, corruption=corruption),
            seeds=range(5),
            until=fdp_legitimate,
            max_steps=BUDGET,
            check_every=64,
            parallel=False,
        )
        assert series.convergence_rate == 1.0
        rows.append(
            ["corruption factor", factor, series.steps_summary()["median"]]
        )
    return rows
