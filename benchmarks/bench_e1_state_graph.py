"""E1 — Figure 1: the process state graph.

Claim reproduced: a process's lifecycle takes exactly the transitions the
paper draws — awake→gone (exit), awake→asleep (sleep), asleep→awake
(message received) — gone is absorbing, and no other transition is
reachable. FDP workloads must exercise only the exit edge, FSP workloads
only the sleep/wake edges.
"""

from benchmarks.common import BUDGET, emit
from repro.analysis.tables import format_table
from repro.core.potential import fdp_legitimate, fsp_legitimate
from repro.core.scenarios import (
    HEAVY_CORRUPTION,
    build_fdp_engine,
    build_fsp_engine,
    choose_leaving,
)
from repro.graphs import generators as gen
from repro.sim.monitors import TransitionMonitor
from repro.sim.states import LEGAL_TRANSITIONS, PState

A, Z, G = PState.AWAKE, PState.ASLEEP, PState.GONE


def run_workloads():
    n = 14
    edges = gen.random_connected(n, 7, seed=5)
    leaving = choose_leaving(n, edges, fraction=0.5, seed=5)

    fdp_mon = TransitionMonitor()
    fdp = build_fdp_engine(
        n, edges, leaving, seed=5, corruption=HEAVY_CORRUPTION, monitors=[fdp_mon]
    )
    assert fdp.run(BUDGET, until=fdp_legitimate, check_every=64)

    fsp_mon = TransitionMonitor()
    fsp = build_fsp_engine(
        n, edges, leaving, seed=5, corruption=HEAVY_CORRUPTION, monitors=[fsp_mon]
    )
    assert fsp.run(BUDGET, until=fsp_legitimate, check_every=64)
    return fdp_mon.observed, fsp_mon.observed


def test_e1_state_graph(benchmark):
    fdp_observed, fsp_observed = benchmark.pedantic(
        run_workloads, iterations=1, rounds=1
    )

    # FDP: only the exit edge exists (sleep unavailable).
    assert fdp_observed == {(A, G)}
    # FSP: only sleep and wake edges exist (exit unavailable); both occur
    # under heavy corruption (stale references wake sleepers).
    assert fsp_observed == {(A, Z), (Z, A)}
    # Together the workloads exercise exactly Figure 1's edge set.
    assert fdp_observed | fsp_observed == set(LEGAL_TRANSITIONS)

    rows = []
    for src, dst in sorted(
        LEGAL_TRANSITIONS, key=lambda t: (t[0].value, t[1].value)
    ):
        rows.append(
            [
                f"{src.value} → {dst.value}",
                (src, dst) in fdp_observed,
                (src, dst) in fsp_observed,
            ]
        )
    rows.append(["gone → (anything)", False, False])  # absorbing
    emit(
        "e1_state_graph",
        format_table(
            ["transition (Figure 1)", "observed in FDP", "observed in FSP"],
            rows,
            title="E1 — process state graph: reachable transitions",
        ),
    )
