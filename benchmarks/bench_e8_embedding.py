"""E8 — Theorem 4: the framework makes any P ∈ 𝒫 solve the FDP too.

Claims reproduced: for each of the four overlay protocols, the combined
protocol P′ (a) excludes every leaving process and (b) still converges to
P's target topology for the stayers, from corrupted initial states.
An ablation varies the verify-retry budget (our reconstruction's only
free parameter): smaller budgets presume leaving earlier, trading extra
re-integration work for faster unblocking — convergence must hold for
every setting.
"""

from benchmarks.common import BUDGET, emit
from repro.analysis.tables import format_table
from repro.core.framework import FrameworkProcess
from repro.core.potential import fdp_legitimate
from repro.core.scenarios import (
    LIGHT_CORRUPTION,
    build_framework_engine,
    choose_leaving,
)
from repro.graphs import generators as gen
from repro.overlays import LOGICS


def run_embedding(logic_name: str, seed: int = 21, retries: int | None = None):
    logic = LOGICS[logic_name]
    n = 10
    edges = gen.random_connected(n, 5, seed=seed)
    leaving = choose_leaving(n, edges, fraction=0.3, seed=seed)
    engine = build_framework_engine(
        n, edges, leaving, logic, seed=seed, corruption=LIGHT_CORRUPTION
    )
    if retries is not None:
        for proc in engine.processes.values():
            proc.max_verify_retries = retries

    def done(e):
        return fdp_legitimate(e) and logic.target_reached(e)

    converged = engine.run(BUDGET, until=done, check_every=128)
    return converged, engine.step_count, engine.stats.messages_posted, engine.stats.exits, len(leaving)


def test_e8_embedding_per_overlay(benchmark):
    rows = []
    for name in sorted(LOGICS):
        converged, steps, msgs, exits, leavers = run_embedding(name)
        assert converged, name
        assert exits == leavers
        rows.append([name, converged, steps, msgs, f"{exits}/{leavers}"])
    emit(
        "e8_embedding",
        format_table(
            ["overlay P", "P′ solves FDP ∧ P", "steps", "messages", "exits"],
            rows,
            title="E8 — Theorem 4: framework(P) per overlay (n=10, light corruption)",
        ),
    )
    benchmark.pedantic(
        run_embedding, args=("linearization",), iterations=1, rounds=1
    )


def _retry_rows():
    rows = []
    for retries in (2, 8, 32):
        converged, steps, msgs, exits, leavers = run_embedding(
            "linearization", retries=retries
        )
        assert converged
        rows.append([retries, steps, msgs])
    return rows


def test_e8_retry_budget_ablation(benchmark):
    rows = benchmark.pedantic(_retry_rows, iterations=1, rounds=1)
    emit(
        "e8_retry_ablation",
        format_table(
            ["max_verify_retries", "steps", "messages"],
            rows,
            title="E8 — verify-retry budget ablation (linearization)",
        ),
    )
