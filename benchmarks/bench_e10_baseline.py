"""E10 — §1.5 comparison: the paper's protocol vs Foreback et al. [15].

Claims reproduced:

* **Generality.** The baseline needs a total order and is tied to the
  sorted list (its staying survivors always end linearized, whatever
  topology you wanted); the paper's protocol is order-free and — via the
  Section 4 framework — composes with arbitrary overlays. The table shows
  the framework preserving four different target topologies while the
  baseline forces the list on all of them.
* **Cost on the baseline's home turf.** On the sorted list both solve the
  same task; medians of steps/messages are compared. The paper's
  order-free protocol is competitive — the crossover claim is about
  *applicability*, not raw speed.
"""

from benchmarks.common import BUDGET, emit
from repro.analysis.runner import run_series
from repro.analysis.tables import format_table
from repro.core.potential import fdp_legitimate
from repro.core.scenarios import build_framework_engine, choose_leaving
from repro.graphs import generators as gen
from repro.overlays import LOGICS
from repro.overlays.builders import build_baseline_engine
from repro.overlays.linearization import LinearizationLogic


def build_ours(n):
    def build(seed):
        edges = gen.bidirected_line(n)
        leaving = choose_leaving(n, edges, fraction=0.3, seed=seed)
        return build_framework_engine(
            n, edges, leaving, LinearizationLogic, seed=seed
        )

    return build


def build_theirs(n):
    def build(seed):
        edges = gen.bidirected_line(n)
        leaving = choose_leaving(n, edges, fraction=0.3, seed=seed)
        return build_baseline_engine(n, edges, leaving, seed=seed)

    return build


def home_turf():
    rows = []
    for n in (8, 16, 24):
        ours = run_series(
            build_ours(n),
            seeds=range(3),
            until=fdp_legitimate,
            max_steps=BUDGET,
            check_every=64,
            parallel=False,
        )
        theirs = run_series(
            build_theirs(n),
            seeds=range(3),
            until=fdp_legitimate,
            max_steps=BUDGET,
            check_every=64,
            parallel=False,
        )
        assert ours.convergence_rate == 1.0
        assert theirs.convergence_rate == 1.0
        rows.append(
            [
                n,
                theirs.steps_summary()["median"],
                ours.steps_summary()["median"],
                theirs.messages_summary()["median"],
                ours.messages_summary()["median"],
            ]
        )
    return rows


def test_e10_home_turf(benchmark):
    rows = benchmark.pedantic(home_turf, iterations=1, rounds=1)
    emit(
        "e10_home_turf",
        format_table(
            [
                "n",
                "baseline steps",
                "framework steps",
                "baseline msgs",
                "framework msgs",
            ],
            rows,
            title="E10 — sorted list (the baseline's topology): medians of 3 seeds",
        ),
    )


def _generality_rows():
    n = 10
    rows = []
    for name in sorted(LOGICS):
        logic = LOGICS[name]
        edges = gen.random_connected(n, 5, seed=31)
        leaving = choose_leaving(n, edges, fraction=0.3, seed=31)
        engine = build_framework_engine(n, edges, leaving, logic, seed=31)

        def done(e, logic=logic):
            return fdp_legitimate(e) and logic.target_reached(e)

        ok = engine.run(BUDGET, until=done, check_every=128)
        assert ok
        rows.append([name, True, "list only (forces linearization)"])
    rows.append(["(any order-free overlay)", True, "✗ needs total order"])
    return rows


def test_e10_generality(benchmark):
    """The framework preserves each overlay's target; the baseline cannot
    be combined with any of them (it always rebuilds the sorted list)."""
    rows = benchmark.pedantic(_generality_rows, iterations=1, rounds=1)
    emit(
        "e10_generality",
        format_table(
            ["target overlay", "framework preserves it", "baseline"],
            rows,
            title="E10 — applicability: framework(P) is topology-agnostic, the baseline is not",
        ),
    )
