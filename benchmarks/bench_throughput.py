"""Engine throughput benchmarks (library performance, not an experiment).

Performance guardrails for the simulator itself — the quantities a
downstream user sizing an experiment cares about:

* raw step throughput of a converging FDP run (n = 64);
* snapshot construction cost on a dense state (the dominant analysis
  primitive);
* the SINGLE-oracle fast path vs the definitional snapshot computation
  (the profiling-driven optimization this suite keeps honest).
"""

from benchmarks.common import BUDGET
from repro.core.potential import fdp_legitimate
from repro.core.scenarios import HEAVY_CORRUPTION, build_fdp_engine, choose_leaving
from repro.graphs import generators as gen


def converge_n64():
    n = 64
    edges = gen.random_connected(n, 32, seed=9)
    leaving = choose_leaving(n, edges, fraction=0.3, seed=9)
    engine = build_fdp_engine(
        n, edges, leaving, seed=9, corruption=HEAVY_CORRUPTION
    )
    assert engine.run(BUDGET, until=fdp_legitimate, check_every=64)
    return engine.step_count


def test_throughput_fdp_n64(benchmark):
    steps = benchmark(converge_n64)
    assert steps > 1000  # a real run, not a no-op


def _dense_engine():
    n = 48
    engine = build_fdp_engine(
        n, gen.clique(n), leaving=set(), seed=1
    )
    engine.attach()
    return engine


def test_snapshot_cost_dense(benchmark):
    engine = _dense_engine()

    def build_snapshot():
        engine._dirty = True  # force a rebuild
        return engine.snapshot()

    snap = benchmark(build_snapshot)
    assert len(snap.edges) == 48 * 47


def test_partner_fast_path(benchmark):
    engine = _dense_engine()

    def all_partners():
        return sum(len(engine.partner_pids(pid)) for pid in range(48))

    total = benchmark(all_partners)
    assert total == 48 * 47  # clique: everyone partners everyone


def test_partner_definitional_path(benchmark):
    """The snapshot-based computation the fast path replaced — kept as a
    benchmark so the speedup (and any future regression) stays visible."""
    engine = _dense_engine()

    def all_partners():
        total = 0
        for pid in range(48):
            engine._dirty = True
            snap = engine.snapshot()
            total += len(snap.partners(pid, within=snap.relevant() - {pid}))
        return total

    total = benchmark(all_partners)
    assert total == 48 * 47
