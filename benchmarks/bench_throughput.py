"""Engine throughput benchmarks (library performance, not an experiment).

Performance guardrails for the simulator itself — the quantities a
downstream user sizing an experiment cares about:

* raw step throughput of a converging FDP run (n = 64);
* snapshot construction cost on a dense state (the dominant analysis
  primitive);
* the SINGLE-oracle fast path vs the definitional snapshot computation
  (the profiling-driven optimization this suite keeps honest);
* monitored throughput: per-step Lemma 2/3 monitors (``check_every=1``)
  under the incremental graph path vs legacy rebuild-on-read.

Run as a module for the CI smoke check::

    PYTHONPATH=src:. python benchmarks/bench_throughput.py --smoke

which writes ``benchmarks/results/BENCH_incremental_graph.json`` with
steps/sec for n ∈ {64, 256} in both graph modes and asserts the
incremental path's speedup at n = 256.
"""

import argparse
import sys

from benchmarks.common import BUDGET, save_json
from repro.analysis.profiling import observation_cost
from repro.core.potential import fdp_legitimate
from repro.core.scenarios import HEAVY_CORRUPTION, build_fdp_engine, choose_leaving
from repro.graphs import generators as gen


def converge_n64():
    n = 64
    edges = gen.random_connected(n, 32, seed=9)
    leaving = choose_leaving(n, edges, fraction=0.3, seed=9)
    engine = build_fdp_engine(
        n, edges, leaving, seed=9, corruption=HEAVY_CORRUPTION
    )
    assert engine.run(BUDGET, until=fdp_legitimate, check_every=64)
    return engine.step_count


def test_throughput_fdp_n64(benchmark):
    steps = benchmark(converge_n64)
    assert steps > 1000  # a real run, not a no-op


def _dense_engine():
    n = 48
    engine = build_fdp_engine(
        n, gen.clique(n), leaving=set(), seed=1
    )
    engine.attach()
    return engine


def test_snapshot_cost_dense(benchmark):
    engine = _dense_engine()

    def build_snapshot():
        engine._dirty = True  # force a rebuild
        return engine.snapshot()

    snap = benchmark(build_snapshot)
    assert len(snap.edges) == 48 * 47


def test_partner_fast_path(benchmark):
    engine = _dense_engine()

    def all_partners():
        return sum(len(engine.partner_pids(pid)) for pid in range(48))

    total = benchmark(all_partners)
    assert total == 48 * 47  # clique: everyone partners everyone


def test_partner_definitional_path(benchmark):
    """The snapshot-based computation the fast path replaced — kept as a
    benchmark so the speedup (and any future regression) stays visible."""
    engine = _dense_engine()

    def all_partners():
        total = 0
        for pid in range(48):
            engine._dirty = True
            snap = engine.snapshot()
            total += len(snap.partners(pid, within=snap.relevant() - {pid}))
        return total

    total = benchmark(all_partners)
    assert total == 48 * 47


# ------------------------------------------------------- monitored throughput


def test_monitored_throughput_incremental(benchmark):
    """Per-step monitors on the live-graph path (the supported default)."""
    result = benchmark.pedantic(
        lambda: observation_cost(64, "incremental", steps=1_000),
        rounds=3,
        iterations=1,
    )
    assert result["steps"] > 0


def test_monitored_throughput_rebuild(benchmark):
    """Per-step monitors forcing a snapshot rebuild per check — the cost
    the incremental path removed, kept visible as a baseline."""
    result = benchmark.pedantic(
        lambda: observation_cost(64, "rebuild", steps=1_000),
        rounds=3,
        iterations=1,
    )
    assert result["steps"] > 0


# ------------------------------------------------------------- CI smoke entry


def smoke(sizes=(64, 256), steps=2_000) -> dict:
    """One monitored run per (n, mode); returns the JSON payload."""
    runs = []
    for n in sizes:
        for mode in ("rebuild", "incremental"):
            runs.append(observation_cost(n, mode, steps=steps))
    payload = {"benchmark": "incremental_graph", "steps_budget": steps, "runs": runs}
    by = {(r["n"], r["mode"]): r for r in runs}
    for n in sizes:
        speedup = by[(n, "incremental")]["steps_per_s"] / by[(n, "rebuild")]["steps_per_s"]
        payload[f"speedup_n{n}"] = round(speedup, 1)
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the monitored-throughput comparison and write "
        "benchmarks/results/BENCH_incremental_graph.json",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("nothing to do; pass --smoke (pytest runs the benchmarks)")
    payload = smoke()
    path = save_json("BENCH_incremental_graph", payload)
    for run in payload["runs"]:
        print(
            f"n={run['n']:>4} mode={run['mode']:<12} "
            f"steps/s={run['steps_per_s']:>10.1f} "
            f"observe={100 * run['observe_frac']:5.1f}%"
        )
    for key, value in sorted(payload.items()):
        if key.startswith("speedup_"):
            print(f"{key}: {value}x")
    print(f"wrote {path}")
    ok = payload["speedup_n256"] >= 5.0
    if not ok:
        print("FAIL: expected >= 5x speedup at n=256", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
