"""Shared helpers for the experiment benchmarks (E1–E11).

Each ``bench_*`` file regenerates one experiment of DESIGN.md's index: it
runs the workload, renders the reproduced table/figure as text, asserts
the *shape* claims (who wins, monotonicity, bounds — not absolute
numbers), and saves the rendering under ``benchmarks/results/`` so
EXPERIMENTS.md can cite concrete outputs. pytest-benchmark measures the
wall-clock cost of the core workload on top.
"""

from __future__ import annotations

import json
import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: default trial budget; large enough for every experiment's n range.
BUDGET = 2_000_000


def save_result(name: str, text: str) -> None:
    """Persist a rendered table/figure under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")


def emit(name: str, text: str) -> None:
    """Print and persist an experiment rendering."""
    print(f"\n{text}\n")
    save_result(name, text)


def save_json(name: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable result under benchmarks/results/.

    Used by the CI smoke benchmarks (``BENCH_*.json``) so regressions in
    quantitative claims — e.g. the incremental graph path's steps/sec
    advantage — are diffable artifacts, not just log lines.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
