"""E9 — the Finite Sleep Problem: oracle-free departure via sleep.

Claims reproduced: the FSP variant reaches legitimacy (all leaving
hibernating) from corrupted states WITHOUT any oracle; no exit ever
happens; hibernation is permanent (closure: zero wake-ups after
legitimacy); and the cost scales comparably to the FDP — the price of
losing the oracle is paid in wake/sleep churn, which the table reports.
"""

from benchmarks.common import BUDGET, emit
from repro.analysis.runner import run_series
from repro.analysis.tables import format_table
from repro.core.potential import fdp_legitimate, fsp_legitimate
from repro.core.scenarios import (
    HEAVY_CORRUPTION,
    build_fdp_engine,
    build_fsp_engine,
    choose_leaving,
)
from repro.graphs import generators as gen


def builders(n, kind):
    def build(seed):
        edges = gen.random_connected(n, n // 2, seed=seed ^ 0xE9)
        leaving = choose_leaving(n, edges, fraction=0.4, seed=seed)
        factory = build_fsp_engine if kind == "fsp" else build_fdp_engine
        return factory(
            n, edges, leaving, seed=seed, corruption=HEAVY_CORRUPTION
        )

    return build


def collect(engine):
    return {
        "wakes": float(engine.stats.wakes),
        "sleeps": float(engine.stats.sleeps),
        "exits": float(engine.stats.exits),
    }


def run_comparison():
    rows = []
    for n in (8, 16, 32):
        fsp = run_series(
            builders(n, "fsp"),
            seeds=range(3),
            until=fsp_legitimate,
            max_steps=BUDGET,
            check_every=64,
            collect=collect,
            parallel=False,
        )
        fdp = run_series(
            builders(n, "fdp"),
            seeds=range(3),
            until=fdp_legitimate,
            max_steps=BUDGET,
            check_every=64,
            collect=collect,
            parallel=False,
        )
        assert fsp.convergence_rate == 1.0
        assert fdp.convergence_rate == 1.0
        assert all(t.extra["exits"] == 0 for t in fsp.trials)  # no exit in FSP
        rows.append(
            [
                n,
                fdp.steps_summary()["median"],
                fsp.steps_summary()["median"],
                fsp.extra_summary("sleeps")["median"],
                fsp.extra_summary("wakes")["median"],
            ]
        )
    return rows


def test_e9_fsp(benchmark):
    rows = benchmark.pedantic(run_comparison, iterations=1, rounds=1)
    emit(
        "e9_fsp",
        format_table(
            [
                "n",
                "FDP median steps (oracle)",
                "FSP median steps (no oracle)",
                "FSP sleeps",
                "FSP wakes",
            ],
            rows,
            title="E9 — FSP vs FDP: oracle-free departure, heavy corruption",
        ),
    )


def _closure_probe():
    n = 16
    edges = gen.lollipop(n)
    leaving = choose_leaving(n, edges, fraction=0.4, seed=9)
    engine = build_fsp_engine(
        n, edges, leaving, seed=9, corruption=HEAVY_CORRUPTION
    )
    assert engine.run(BUDGET, until=fsp_legitimate, check_every=64)
    wakes = engine.stats.wakes
    for _ in range(2_000):
        if engine.step() is None:
            break
        assert fsp_legitimate(engine)
    return engine.stats.wakes - wakes


def test_e9_hibernation_closure(benchmark):
    extra_wakes = benchmark.pedantic(_closure_probe, iterations=1, rounds=1)
    assert extra_wakes == 0  # hibernation is permanent
    emit(
        "e9_closure",
        "E9 — closure probe: 2000 post-legitimacy steps, "
        f"spontaneous wake-ups = {extra_wakes} (claim: 0)",
    )
