"""Bench-regression gate: fresh smoke run vs the committed baseline.

Loads the committed ``benchmarks/results/BENCH_incremental_graph.json``,
``BENCH_telemetry.json``, and ``BENCH_chaos.json`` *before* re-running
the smoke benchmarks (whose ``save_json`` would overwrite them),
measures afresh, and fails if

* any incremental-mode steps/sec figure dropped more than
  ``--tolerance`` (default 30%) below the committed number, or
* the JSONL trace sink's overhead vs tracing-off exceeds the 15%
  budget recorded in the telemetry baseline, or the tracing-off
  steps/sec dropped more than ``--tolerance`` below the committed one, or
* the default watchdog set's overhead vs the unsupervised run exceeds
  the 15% budget recorded in the chaos baseline, or the unsupervised
  steps/sec dropped more than ``--tolerance`` below the committed one, or
* the SoA core's n=4096 steps/sec (``BENCH_soa.json``) dropped more
  than ``--tolerance`` below the committed figure. The fresh run uses
  the committed file's *full* step budget (one interleaved pair,
  ~30 s) — the quartered smoke budget measures systematically lower
  rates, so comparing it against full-budget baselines would eat the
  whole tolerance — and the committed base is the *minimum* soa rate
  across the baseline's pairs, the conservative choice against pair
  variance, or
* the open-system churn workload's n=4096 soa steps/sec
  (``BENCH_churn.json``) dropped more than ``--tolerance`` below the
  committed figure, or the fresh run saw ANY monotonic-searchability
  violation (that check is absolute — it is the open-system acceptance
  invariant, not a performance number), or
* the unreliable-underlay figures (``BENCH_netfault.json``) regressed:
  retransmit amplification or convergence-time inflation at the
  10%-loss point above the committed value by more than ``--tolerance``,
  amplification above the hard 3x acceptance bound, a faulty cell
  failing to converge, or any monotonic-searchability violation under
  loss (the last three are absolute).

Two kinds of drift can trip this gate: a real hot-path regression, or a
slower CI host than the one that committed the baseline. The rebuild-mode
rows are exempt on purpose — they are the legacy path kept only for
comparison — and ``--tolerance`` exists to absorb ordinary host jitter;
if the gate fires across the board (every row down by a similar factor)
suspect the host, re-baseline deliberately, and say so in the commit.

Usage::

    PYTHONPATH=src:. python benchmarks/check_regression.py [--tolerance 0.3]
"""

import argparse
import json
import pathlib
import sys

from benchmarks.bench_chaos import smoke as chaos_smoke
from benchmarks.bench_churn import smoke as churn_smoke
from benchmarks.bench_netfault import smoke as netfault_smoke
from benchmarks.bench_step_loop import soa_smoke
from benchmarks.bench_telemetry import smoke as telemetry_smoke
from benchmarks.bench_throughput import smoke

COMMITTED = (
    pathlib.Path(__file__).parent / "results" / "BENCH_incremental_graph.json"
)
COMMITTED_TELEMETRY = (
    pathlib.Path(__file__).parent / "results" / "BENCH_telemetry.json"
)
COMMITTED_CHAOS = (
    pathlib.Path(__file__).parent / "results" / "BENCH_chaos.json"
)
COMMITTED_SOA = (
    pathlib.Path(__file__).parent / "results" / "BENCH_soa.json"
)
COMMITTED_CHURN = (
    pathlib.Path(__file__).parent / "results" / "BENCH_churn.json"
)
COMMITTED_NETFAULT = (
    pathlib.Path(__file__).parent / "results" / "BENCH_netfault.json"
)


def compare(committed: dict, fresh: dict, tolerance: float) -> list[str]:
    """Return one failure line per incremental run below the floor."""
    committed_by = {
        (r["n"], r["mode"]): r["steps_per_s"] for r in committed["runs"]
    }
    failures = []
    for run in fresh["runs"]:
        if run["mode"] != "incremental":
            continue
        key = (run["n"], run["mode"])
        base = committed_by.get(key)
        if base is None or base <= 0:
            continue
        floor = base * (1.0 - tolerance)
        if run["steps_per_s"] < floor:
            failures.append(
                f"n={run['n']} {run['mode']}: {run['steps_per_s']:.1f} steps/s "
                f"< floor {floor:.1f} (committed {base:.1f}, "
                f"tolerance {tolerance:.0%})"
            )
    return failures


def compare_telemetry(committed: dict, fresh: dict, tolerance: float) -> list[str]:
    """Gate the trace-sink overhead budget and the tracing-off floor."""
    failures = []
    limit = committed.get("jsonl_overhead_limit", 0.15)
    if fresh["jsonl_overhead_frac"] > limit:
        failures.append(
            f"telemetry: JSONL sink overhead {fresh['jsonl_overhead_frac']:.1%} "
            f"exceeds the {limit:.0%} budget"
        )
    committed_off = next(
        (r["steps_per_s"] for r in committed["runs"] if r["sink"] == "off"), 0
    )
    fresh_off = next(r["steps_per_s"] for r in fresh["runs"] if r["sink"] == "off")
    if committed_off > 0 and fresh_off < committed_off * (1.0 - tolerance):
        failures.append(
            f"telemetry: tracing-off {fresh_off:.1f} steps/s < floor "
            f"{committed_off * (1.0 - tolerance):.1f} (committed "
            f"{committed_off:.1f}, tolerance {tolerance:.0%})"
        )
    return failures


def compare_chaos(committed: dict, fresh: dict, tolerance: float) -> list[str]:
    """Gate the watchdog overhead budget and the unsupervised floor."""
    failures = []
    limit = committed.get("watchdog_overhead_limit", 0.15)
    if fresh["watchdog_overhead_frac"] > limit:
        failures.append(
            f"chaos: watchdog overhead {fresh['watchdog_overhead_frac']:.1%} "
            f"exceeds the {limit:.0%} budget"
        )
    committed_plain = next(
        (r["steps_per_s"] for r in committed["runs"] if r["config"] == "plain"),
        0,
    )
    fresh_plain = next(
        r["steps_per_s"] for r in fresh["runs"] if r["config"] == "plain"
    )
    if committed_plain > 0 and fresh_plain < committed_plain * (1.0 - tolerance):
        failures.append(
            f"chaos: unsupervised {fresh_plain:.1f} steps/s < floor "
            f"{committed_plain * (1.0 - tolerance):.1f} (committed "
            f"{committed_plain:.1f}, tolerance {tolerance:.0%})"
        )
    return failures


def _soa_rates(payload: dict, n: int) -> list[float]:
    return [
        run["steps_per_s"]
        for run in payload["runs"]
        if run["n"] == n and run["mode"] == "soa"
    ]


def compare_soa(committed: dict, fresh: dict, tolerance: float) -> list[str]:
    """Gate the SoA core's n=4096 unmonitored throughput floor.

    Base = the committed file's lowest soa rate at n=4096 (pairs of the
    same run legitimately spread ~20% — see the committed artifact — so
    the minimum is the number a healthy host reliably clears); fresh =
    the best fresh pair, both measured on the full step budget.
    """
    rates = _soa_rates(committed, 4096)
    if not rates:
        return []
    base = min(rates)
    if base <= 0:
        return []
    fresh_rate = max(_soa_rates(fresh, 4096))
    floor = base * (1.0 - tolerance)
    if fresh_rate < floor:
        return [
            f"soa core: n=4096 {fresh_rate:.1f} steps/s < floor "
            f"{floor:.1f} (committed {base:.1f}, tolerance {tolerance:.0%})"
        ]
    return []


def compare_churn(committed: dict, fresh: dict, tolerance: float) -> list[str]:
    """Gate the open-system churn throughput floor and the zero-violation
    acceptance invariant (the latter is absolute — never jitter)."""
    committed_by = {
        (r["n"], r["mode"]): r["steps_per_s"] for r in committed["runs"]
    }
    failures = []
    for run in fresh["runs"]:
        if run["violations"]:
            failures.append(
                f"churn: n={run['n']} {run['mode']}: {run['violations']} "
                "monotonic-searchability violations in a fault-free run"
            )
        base = committed_by.get((run["n"], run["mode"]))
        if base is None or base <= 0:
            continue
        floor = base * (1.0 - tolerance)
        if run["steps_per_s"] < floor:
            failures.append(
                f"churn: n={run['n']} {run['mode']}: "
                f"{run['steps_per_s']:.1f} steps/s < floor {floor:.1f} "
                f"(committed {base:.1f}, tolerance {tolerance:.0%})"
            )
    return failures


def compare_netfault(committed: dict, fresh: dict, tolerance: float) -> list[str]:
    """Gate the transport's fault-tolerance figures.

    Safety is absolute — a non-converged faulty cell or any
    monotonic-searchability violation under loss fails regardless of
    tolerance, as does breaching the hard 3x amplification acceptance
    bound. The two ratios (retransmit amplification and
    convergence-time inflation at the 10%-loss point) are gated at the
    usual tolerance against the committed baseline.
    """
    failures = []
    if not fresh["all_converged"]:
        failures.append(
            "netfault: a faulty FDP/FSP cell did not converge to legitimacy"
        )
    if fresh["traffic"]["violations"]:
        failures.append(
            f"netfault: {fresh['traffic']['violations']} "
            "monotonic-searchability violations under 10% loss"
        )
    hard = committed.get("max_amplification_limit", 3.0)
    if fresh["amplification_at_10"] > hard:
        failures.append(
            f"netfault: amplification {fresh['amplification_at_10']} at 10% "
            f"loss exceeds the hard {hard}x acceptance bound"
        )
    for key, label in (
        ("amplification_at_10", "retransmit amplification"),
        ("inflation_at_10", "convergence inflation"),
    ):
        base = committed.get(key, 0)
        if base <= 0:
            continue
        ceiling = base * (1.0 + tolerance)
        if fresh[key] > ceiling:
            failures.append(
                f"netfault: {label} {fresh[key]} at 10% loss > ceiling "
                f"{ceiling:.4f} (committed {base}, tolerance {tolerance:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop below the committed steps/s",
    )
    parser.add_argument(
        "--committed",
        type=pathlib.Path,
        default=COMMITTED,
        help="baseline JSON to compare against",
    )
    parser.add_argument(
        "--committed-telemetry",
        type=pathlib.Path,
        default=COMMITTED_TELEMETRY,
        help="telemetry baseline JSON to compare against",
    )
    parser.add_argument(
        "--committed-chaos",
        type=pathlib.Path,
        default=COMMITTED_CHAOS,
        help="chaos-supervision baseline JSON to compare against",
    )
    parser.add_argument(
        "--committed-soa",
        type=pathlib.Path,
        default=COMMITTED_SOA,
        help="SoA-core baseline JSON to compare against",
    )
    parser.add_argument(
        "--committed-churn",
        type=pathlib.Path,
        default=COMMITTED_CHURN,
        help="open-system churn baseline JSON to compare against",
    )
    parser.add_argument(
        "--committed-netfault",
        type=pathlib.Path,
        default=COMMITTED_NETFAULT,
        help="unreliable-underlay baseline JSON to compare against",
    )
    args = parser.parse_args(argv)
    committed = json.loads(args.committed.read_text())
    committed_telemetry = json.loads(args.committed_telemetry.read_text())
    committed_chaos = json.loads(args.committed_chaos.read_text())
    committed_soa = json.loads(args.committed_soa.read_text())
    committed_churn = json.loads(args.committed_churn.read_text())
    committed_netfault = json.loads(args.committed_netfault.read_text())
    fresh = smoke()
    for run in fresh["runs"]:
        print(
            f"n={run['n']:>4} mode={run['mode']:<12} "
            f"steps/s={run['steps_per_s']:>10.1f}"
        )
    fresh_telemetry = telemetry_smoke()
    for run in fresh_telemetry["runs"]:
        print(
            f"sink={run['sink']:<12} steps/s={run['steps_per_s']:>10.1f} "
            f"overhead={100 * run['overhead_frac']:6.2f}%"
        )
    fresh_chaos = chaos_smoke()
    for run in fresh_chaos["runs"]:
        print(
            f"config={run['config']:<12} steps/s={run['steps_per_s']:>10.1f} "
            f"overhead={100 * run['overhead_frac']:6.2f}%"
        )
    fresh_soa = soa_smoke([4096], pairs=1)
    for run in fresh_soa["runs"]:
        print(
            f"core n={run['n']:>6} mode={run['mode']:<8} "
            f"steps/s={run['steps_per_s']:>10.1f}"
        )
    fresh_churn = churn_smoke()
    for run in fresh_churn["runs"]:
        print(
            f"churn n={run['n']:>5} mode={run['mode']:<7} "
            f"steps/s={run['steps_per_s']:>10.1f} "
            f"requests={run['requests']} violations={run['violations']}"
        )
    fresh_netfault = netfault_smoke()
    print(
        f"netfault amp@10%={fresh_netfault['amplification_at_10']} "
        f"inflation@10%={fresh_netfault['inflation_at_10']} "
        f"traffic_violations={fresh_netfault['traffic']['violations']} "
        f"converged={fresh_netfault['all_converged']}"
    )
    failures = compare(committed, fresh, args.tolerance)
    failures += compare_telemetry(
        committed_telemetry, fresh_telemetry, args.tolerance
    )
    failures += compare_chaos(committed_chaos, fresh_chaos, args.tolerance)
    failures += compare_soa(committed_soa, fresh_soa, args.tolerance)
    failures += compare_churn(committed_churn, fresh_churn, args.tolerance)
    failures += compare_netfault(
        committed_netfault, fresh_netfault, args.tolerance
    )
    if failures:
        for line in failures:
            print(f"REGRESSION: {line}", file=sys.stderr)
        print(
            "Performance regression against the committed baseline. See "
            "docs/PERF.md for the measurement protocol, the profiling "
            "workflow to locate the regression, and how to re-baseline "
            "if CI hardware legitimately shifted.",
            file=sys.stderr,
        )
        return 1
    print("no regression: incremental steps/s within tolerance of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
