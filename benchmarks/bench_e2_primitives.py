"""E2 — Figure 2 + Lemma 1: the four primitives.

Claims reproduced: each primitive has its pictured local effect, each
preserves weak connectivity on random graphs (Lemma 1), and each is cheap
(constant-time on the multigraph representation — the microbenchmark
quantifies the per-operation cost the overlay protocols pay).
"""

from random import Random

from benchmarks.common import emit
from repro.analysis.tables import format_table
from repro.core.primitives import Primitive, PrimitiveGraph
from repro.core.universality import enumerate_ops
from repro.graphs import generators as gen


def random_walk_preserving_connectivity(n: int, steps: int, seed: int) -> dict:
    """Apply *steps* random primitives to a random connected graph and
    count per-primitive applications; connectivity is re-verified after
    every operation (Lemma 1)."""
    rng = Random(seed)
    g = PrimitiveGraph(
        range(n),
        gen.random_connected(n, n // 2, seed=seed),
        check_connectivity=True,  # raises on any Lemma 1 violation
    )
    counts = {p: 0 for p in Primitive}
    for _ in range(steps):
        ops = enumerate_ops(g, frozenset(Primitive), max_multiplicity=2)
        if not ops:
            break
        op = ops[rng.randrange(len(ops))]
        g.apply(op)
        counts[op.primitive] += 1
    assert g.is_weakly_connected()
    return counts


def apply_batch(n: int, seed: int) -> int:
    """The timed core: a 200-op random primitive walk without the per-step
    connectivity check (pure primitive cost)."""
    rng = Random(seed)
    g = PrimitiveGraph(range(n), gen.random_connected(n, n // 2, seed=seed))
    applied = 0
    for _ in range(200):
        ops = enumerate_ops(g, frozenset(Primitive), max_multiplicity=2)
        if not ops:
            break
        g.apply(ops[rng.randrange(len(ops))])
        applied += 1
    return applied


def figure2_pictures() -> str:
    """The four pictured local effects of Figure 2, replayed on minimal
    instances (u=0, v=1, w=2) and rendered as before → after edge lists."""
    cases = []

    g = PrimitiveGraph([0, 1, 2], [(0, 1), (0, 2)])
    before = sorted(g.edges())
    g.introduce(0, 1, 2)
    cases.append(("Introduction  ♦  u introduces w to v", before, sorted(g.edges())))

    g = PrimitiveGraph([0, 1, 2], [(0, 1), (0, 2)])
    before = sorted(g.edges())
    g.delegate(0, 1, 2)
    cases.append(("Delegation    ♥  u delegates w to v", before, sorted(g.edges())))

    g = PrimitiveGraph([0, 1], [(0, 1), (0, 1)])
    before = sorted(g.edges())
    g.fuse(0, 1)
    cases.append(("Fusion        ♠  u fuses duplicate refs", before, sorted(g.edges())))

    g = PrimitiveGraph([0, 1], [(0, 1)])
    before = sorted(g.edges())
    g.reverse(0, 1)
    cases.append(("Reversal      ♣  u reverses its edge", before, sorted(g.edges())))

    g = PrimitiveGraph([0, 1], [(0, 1)])
    before = sorted(g.edges())
    g.self_introduce(0, 1)
    cases.append(
        ("Self-intro    ♦  u sends its own ref to v", before, sorted(g.edges()))
    )

    lines = ["E2 — Figure 2: the four primitives, replayed (u=0, v=1, w=2)", ""]
    for title, before, after in cases:
        lines.append(f"{title}")
        lines.append(f"    before {before}")
        lines.append(f"    after  {after}")
    return "\n".join(lines)


def test_e2_figure2_pictures(benchmark):
    text = benchmark.pedantic(figure2_pictures, iterations=1, rounds=1)
    emit("e2_figure2", text)
    # the pictured effects, asserted
    assert "after  [(0, 1), (0, 2), (1, 2)]" in text  # introduction
    assert "after  [(0, 1), (1, 2)]" in text  # delegation
    assert "after  [(0, 1)]" in text  # fusion
    assert "after  [(1, 0)]" in text  # reversal


def test_e2_primitives(benchmark):
    rows = []
    for n in (16, 64, 256):
        counts = random_walk_preserving_connectivity(n, steps=300, seed=n)
        rows.append(
            [
                n,
                counts[Primitive.INTRODUCTION] + counts[Primitive.SELF_INTRODUCTION],
                counts[Primitive.DELEGATION],
                counts[Primitive.FUSION],
                counts[Primitive.REVERSAL],
                True,  # connectivity held throughout (checked per step)
            ]
        )
    emit(
        "e2_primitives",
        format_table(
            ["n", "introductions", "delegations", "fusions", "reversals", "Lemma 1 held"],
            rows,
            title="E2 — random 300-op primitive walks, per-step connectivity verified",
        ),
    )
    applied = benchmark.pedantic(apply_batch, args=(64, 1), iterations=1, rounds=3)
    assert applied == 200
