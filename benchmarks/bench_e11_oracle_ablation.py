"""E11 — why the SINGLE oracle: an oracle ablation.

Claims reproduced (the executable form of the impossibility discussion of
§1.3 and the SINGLE design rationale of §1.5):

* exact SINGLE — every run converges and every exit is safe;
* NEVER — safety holds but no process ever leaves (liveness requires the
  oracle to fire);
* ALWAYS — liveness is instant but some exits happen while SINGLE is
  false, i.e. without a safety guarantee (the count of such unguarded
  exits is the damage metric; these are the runs a real deployment could
  lose connectivity in);
* timeout-approximated SINGLE — converges, and its unguarded-exit count
  shrinks as the grace window grows, quantifying the paper's remark that
  SINGLE should be "easily implementable via timeouts in practice";
* timeout-approximated SINGLE **under delay faults** — the same grace
  sweep over an unreliable underlay (`repro.net`, delay-only faults):
  delayed frames stretch the window in which another process's channel
  still holds a reference to the caller, which is precisely the
  timeout oracle's blind spot, so the premature-exit rate at a given
  grace is the safe-grace calibration docs/ROBUSTNESS.md quotes.
"""

from benchmarks.common import BUDGET, emit
from repro.analysis.tables import format_table
from repro.core.oracles import (
    AlwaysOracle,
    NeverOracle,
    SingleOracle,
    TimeoutSingleOracle,
)
from repro.core.potential import fdp_legitimate, relevant_connected_per_component
from repro.core.scenarios import HEAVY_CORRUPTION, build_fdp_engine, choose_leaving
from repro.graphs import generators as gen
from repro.sim.monitors import ExitGuardMonitor


#: grace windows swept under delay faults (queries, not steps).
DELAY_GRACE_GRID = (0, 4, 16, 64)


def run_with_oracle(make_oracle, seeds=range(10), budget=100_000, delay=0.0):
    converged = 0
    unsafe_exits = 0
    exits = 0
    safe_end = 0
    for seed in seeds:
        n = 12
        edges = gen.random_connected(n, 4, seed=seed ^ 0x11E)
        leaving = choose_leaving(n, edges, fraction=0.4, seed=seed)
        guard = ExitGuardMonitor(SingleOracle(), strict=False)
        engine = build_fdp_engine(
            n,
            edges,
            leaving,
            seed=seed,
            oracle=make_oracle(),
            corruption=HEAVY_CORRUPTION,
        )
        engine.exit_auditors.append(guard)
        if delay:
            from repro.net import ReliableTransport, default_net_config

            cfg = default_net_config(
                seed, loss=0.0, dup=0.0, delay=delay, partition_at=None
            )
            ReliableTransport.from_config(cfg).install(engine)
        if engine.run(budget, until=fdp_legitimate, check_every=64):
            converged += 1
        unsafe_exits += len(guard.unsafe_exits)
        exits += engine.stats.exits
        if relevant_connected_per_component(engine):
            safe_end += 1
    return converged, exits, unsafe_exits, safe_end, len(list(seeds))


def ablation():
    table = {}
    table["single (exact)"] = run_with_oracle(SingleOracle)
    table["never"] = run_with_oracle(NeverOracle, budget=15_000)
    table["always"] = run_with_oracle(AlwaysOracle)
    for grace in (0, 4, 16):
        table[f"timeout_single(grace={grace})"] = run_with_oracle(
            lambda g=grace: TimeoutSingleOracle(grace=g)
        )
    return table


def delay_sweep(delay=0.3, grid=DELAY_GRACE_GRID):
    """Premature-exit rate vs grace with delay-only underlay faults.

    Loss and duplication stay at zero so every extra unguarded exit is
    attributable to *delay* — frames in flight keep references parked in
    channels the timeout oracle cannot observe from the caller.
    """
    table = {}
    for grace in grid:
        table[grace] = run_with_oracle(
            lambda g=grace: TimeoutSingleOracle(grace=g), delay=delay
        )
    return table


def test_e11_oracle_ablation(benchmark):
    table = benchmark.pedantic(ablation, iterations=1, rounds=1)
    rows = []
    for name, (conv, exits, unsafe, safe_end, total) in table.items():
        rows.append([name, f"{conv}/{total}", exits, unsafe, f"{safe_end}/{total}"])
    emit(
        "e11_oracle_ablation",
        format_table(
            [
                "oracle",
                "converged",
                "exits",
                "exits while SINGLE false",
                "still connected",
            ],
            rows,
            title="E11 — oracle ablation (10 seeds each, heavy corruption, n=12)",
        ),
    )

    conv, _, unsafe, safe_end, total = table["single (exact)"]
    assert conv == total and unsafe == 0 and safe_end == total
    conv, exits, _, safe_end, total = table["never"]
    assert conv == 0 and exits == 0 and safe_end == total  # safe but not live
    _, exits, unsafe, _, _ = table["always"]
    assert exits > 0 and unsafe > 0  # unguarded exits really happen
    # the timeout approximation converges and its blind spot shrinks with
    # a longer grace window
    unsafe_by_grace = [
        table[f"timeout_single(grace={g})"][2] for g in (0, 4, 16)
    ]
    conv_by_grace = [
        table[f"timeout_single(grace={g})"][0] for g in (0, 4, 16)
    ]
    assert all(c == 10 for c in conv_by_grace)
    assert unsafe_by_grace[-1] <= unsafe_by_grace[0]


def test_e11_timeout_grace_under_delay(benchmark):
    """The safe-grace calibration quoted in docs/ROBUSTNESS.md."""
    table = benchmark.pedantic(delay_sweep, iterations=1, rounds=1)
    rows = []
    for grace, (conv, exits, unsafe, safe_end, total) in table.items():
        rate = unsafe / max(1, exits)
        rows.append(
            [
                f"grace={grace}",
                f"{conv}/{total}",
                exits,
                unsafe,
                f"{rate:.3f}",
                f"{safe_end}/{total}",
            ]
        )
    emit(
        "e11_timeout_grace_under_delay",
        format_table(
            [
                "timeout_single",
                "converged",
                "exits",
                "premature exits",
                "premature rate",
                "still connected",
            ],
            rows,
            title=(
                "E11b — timeout grace vs delay faults "
                "(delay=0.3, loss=dup=0, 10 seeds, n=12)"
            ),
        ),
    )
    # every cell still converges: delay faults hurt safety margins, not
    # liveness (the transport guarantees eventual delivery)
    assert all(v[0] == v[4] for v in table.values())
    # the instant oracle really does exit prematurely under delay, and
    # the widest grace window improves on it
    graces = sorted(table)
    assert table[graces[0]][2] > 0
    assert table[graces[-1]][2] <= table[graces[0]][2]
